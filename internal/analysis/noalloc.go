package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NoAllocAnalyzer turns the repository's AllocsPerRun bench gates into
// build-time errors: a function whose doc comment carries the line
//
//	//caa:noalloc
//
// may not contain allocating constructs. Flagged: escaping composite
// literals (&T{…}, slice and map literals), make and new, capturing
// closures, fmt calls, string concatenation and string<->[]byte
// conversions, interface boxing of non-pointer-shaped values, and any
// append that is not the reassignment form `x = append(x, …)` /
// `x = append(x[:i], …)` (the presized-buffer idiom the hot paths use;
// actual growth is still caught by the bench gates).
//
// panic(...) argument subtrees are exempt: the failure path is allowed to
// allocate its message. The analyzer checks only the annotated function's
// own body — callees are not chased, so cold-path helpers (ring.grow) stay
// unannotated and free to allocate.
//
// Annotated exported functions are exported as facts, so importing packages
// can see which dependency entry points carry the contract.
var NoAllocAnalyzer = &Analyzer{
	Name: "noalloc",
	Doc: "functions annotated //caa:noalloc must not contain allocating " +
		"constructs; the hot path's 0 allocs/op becomes a build-time guarantee",
	Run: runNoAlloc,
}

// noAllocFact marks an exported function as carrying the //caa:noalloc
// contract.
type noAllocFact struct {
	NoAlloc bool `json:"noalloc"`
}

func runNoAlloc(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !hasNoAllocDoc(fn) {
				continue
			}
			w := &noAllocWalker{pass: pass, fn: fn}
			ast.Inspect(fn.Body, w.visit)
			if obj, ok := pass.Info.Defs[fn.Name].(*types.Func); ok && lockFuncExported(obj) {
				pass.ExportFact(ObjKey(obj), noAllocFact{NoAlloc: true})
			}
		}
	}
}

// hasNoAllocDoc reports whether the function's doc comment contains the
// //caa:noalloc annotation line.
func hasNoAllocDoc(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if trimComment(c.Text) == "caa:noalloc" {
			return true
		}
	}
	return false
}

func trimComment(text string) string {
	if len(text) >= 2 && text[:2] == "//" {
		text = text[2:]
	}
	for len(text) > 0 && (text[0] == ' ' || text[0] == '\t') {
		text = text[1:]
	}
	for len(text) > 0 && (text[len(text)-1] == ' ' || text[len(text)-1] == '\t') {
		text = text[:len(text)-1]
	}
	return text
}

type noAllocWalker struct {
	pass *Pass
	fn   *ast.FuncDecl
	// sanctionedAppends holds append calls in the `x = append(x, …)`
	// reassignment form, collected when their AssignStmt is visited (Inspect
	// is pre-order, so the statement is seen before the call).
	sanctionedAppends map[*ast.CallExpr]bool
	// childConcats marks operands of an already-reported string
	// concatenation chain, so a+b+c yields one diagnostic.
	childConcats map[ast.Expr]bool
}

func (w *noAllocWalker) visit(n ast.Node) bool {
	switch n := n.(type) {
	case *ast.FuncLit:
		// The literal's interior is a different function; creating the
		// closure is what can allocate, and only when it captures.
		if captured := freeVars(w.pass.Info, n); len(captured) > 0 {
			w.report(n.Pos(), "closure captures %s: the closure and its captured variables escape to the heap", captured[0].Name())
		}
		return false

	case *ast.CompositeLit:
		tv, ok := w.pass.Info.Types[n]
		if !ok || tv.Type == nil {
			return true
		}
		switch tv.Type.Underlying().(type) {
		case *types.Slice:
			w.report(n.Pos(), "slice literal allocates its backing array")
		case *types.Map:
			w.report(n.Pos(), "map literal allocates")
		}
		return true

	case *ast.UnaryExpr:
		if n.Op == token.AND {
			if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
				w.report(n.Pos(), "&composite literal escapes to the heap")
			}
		}
		return true

	case *ast.BinaryExpr:
		if n.Op == token.ADD && !w.childConcats[n] {
			if tv, ok := w.pass.Info.Types[n]; ok && tv.Value == nil && isStringType(tv.Type) {
				w.report(n.Pos(), "string concatenation allocates the result")
				w.markConcatChildren(n)
			}
		}
		return true

	case *ast.AssignStmt:
		w.collectSanctionedAppends(n)
		if len(n.Lhs) == len(n.Rhs) && n.Tok == token.ASSIGN {
			for i, lhs := range n.Lhs {
				if tv, ok := w.pass.Info.Types[lhs]; ok {
					w.boxCheck(tv.Type, n.Rhs[i])
				}
			}
		}
		return true

	case *ast.ReturnStmt:
		if sig, ok := w.pass.Info.Defs[w.fn.Name].(*types.Func); ok {
			results := sig.Type().(*types.Signature).Results()
			if results.Len() == len(n.Results) {
				for i, r := range n.Results {
					w.boxCheck(results.At(i).Type(), r)
				}
			}
		}
		return true

	case *ast.ValueSpec:
		if n.Type != nil {
			if tv, ok := w.pass.Info.Types[n.Type]; ok {
				for _, v := range n.Values {
					w.boxCheck(tv.Type, v)
				}
			}
		}
		return true

	case *ast.SendStmt:
		if tv, ok := w.pass.Info.Types[n.Chan]; ok {
			if ch, ok := tv.Type.Underlying().(*types.Chan); ok {
				w.boxCheck(ch.Elem(), n.Value)
			}
		}
		return true

	case *ast.CallExpr:
		return w.visitCall(n)
	}
	return true
}

func (w *noAllocWalker) visitCall(n *ast.CallExpr) bool {
	// panic's argument is the failure path; let it build its message.
	if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
		if b, isBuiltin := w.pass.Info.Uses[id].(*types.Builtin); isBuiltin {
			switch b.Name() {
			case "panic":
				return false
			case "make":
				w.reportMake(n)
				return true
			case "new":
				w.report(n.Pos(), "new allocates")
				return true
			case "append":
				if !w.sanctionedAppends[n] {
					w.report(n.Pos(), "append outside the `x = append(x, …)` reassignment form may allocate a new backing array")
				}
				return true
			}
		}
	}
	if name, ok := pkgFunc(w.pass.Info, n, "fmt"); ok {
		w.report(n.Pos(), "fmt.%s allocates (formatting state and boxed arguments)", name)
		return true
	}
	// Type conversions: string <-> []byte / []rune copy their contents.
	if tv, ok := w.pass.Info.Types[n.Fun]; ok && tv.IsType() && len(n.Args) == 1 {
		dst := tv.Type
		if src, ok := w.pass.Info.Types[n.Args[0]]; ok && src.Value == nil {
			if isStringType(dst) && isByteOrRuneSlice(src.Type) {
				w.report(n.Pos(), "[]byte-to-string conversion copies the bytes")
			} else if isByteOrRuneSlice(dst) && isStringType(src.Type) {
				w.report(n.Pos(), "string-to-[]byte conversion copies the bytes")
			}
		}
		return true
	}
	// Interface-typed parameters box concrete arguments.
	if tvFun, ok := w.pass.Info.Types[n.Fun]; ok && tvFun.Type != nil {
		if sig, ok := tvFun.Type.Underlying().(*types.Signature); ok {
			w.boxCheckArgs(sig, n)
		}
	}
	return true
}

func (w *noAllocWalker) reportMake(n *ast.CallExpr) {
	if len(n.Args) == 0 {
		return
	}
	tv, ok := w.pass.Info.Types[n.Args[0]]
	if !ok || tv.Type == nil {
		w.report(n.Pos(), "make allocates")
		return
	}
	switch tv.Type.Underlying().(type) {
	case *types.Map:
		w.report(n.Pos(), "make(map) allocates")
	case *types.Chan:
		w.report(n.Pos(), "make(chan) allocates")
	default:
		w.report(n.Pos(), "make([]T, …) allocates its backing array")
	}
}

// boxCheckArgs flags concrete arguments passed to interface-typed parameters.
func (w *noAllocWalker) boxCheckArgs(sig *types.Signature, call *ast.CallExpr) {
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				pt = params.At(params.Len() - 1).Type() // passed as-is, no boxing
				if _, isSlice := pt.Underlying().(*types.Slice); isSlice {
					continue
				}
			} else if s, ok := params.At(params.Len() - 1).Type().Underlying().(*types.Slice); ok {
				pt = s.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt != nil {
			w.boxCheck(pt, arg)
		}
	}
}

// boxCheck flags e when storing it into a destination of interface type would
// box it on the heap: concrete, non-constant, non-nil, and not pointer-shaped
// (pointers, channels, maps and funcs are stored in the interface word
// directly).
func (w *noAllocWalker) boxCheck(dst types.Type, e ast.Expr) {
	if dst == nil || !types.IsInterface(dst) {
		return
	}
	tv, ok := w.pass.Info.Types[e]
	if !ok || tv.Type == nil || tv.Value != nil || tv.IsNil() {
		return
	}
	src := tv.Type
	if types.IsInterface(src) {
		return
	}
	switch u := src.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return
	case *types.Basic:
		if u.Kind() == types.UnsafePointer {
			return
		}
	}
	w.report(e.Pos(), "passing %s into an interface boxes it on the heap", src.String())
}

// collectSanctionedAppends marks append calls in the reassignment form
// `x = append(x, …)` or `x = append(x[:i], …)`: the hot paths presize their
// buffers, so the reassignment form does not allocate in the steady state.
func (w *noAllocWalker) collectSanctionedAppends(n *ast.AssignStmt) {
	if n.Tok != token.ASSIGN || len(n.Lhs) != len(n.Rhs) {
		return
	}
	for i, rhs := range n.Rhs {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			continue
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || id.Name != "append" {
			continue
		}
		if _, isBuiltin := w.pass.Info.Uses[id].(*types.Builtin); !isBuiltin {
			continue
		}
		base := ast.Unparen(call.Args[0])
		if slice, ok := base.(*ast.SliceExpr); ok {
			base = ast.Unparen(slice.X)
		}
		if types.ExprString(base) == types.ExprString(ast.Unparen(n.Lhs[i])) {
			if w.sanctionedAppends == nil {
				w.sanctionedAppends = make(map[*ast.CallExpr]bool)
			}
			w.sanctionedAppends[call] = true
		}
	}
}

// markConcatChildren records the operand sub-concatenations of a reported
// string concatenation, so a + b + c produces a single diagnostic.
func (w *noAllocWalker) markConcatChildren(n *ast.BinaryExpr) {
	if w.childConcats == nil {
		w.childConcats = make(map[ast.Expr]bool)
	}
	for _, op := range []ast.Expr{ast.Unparen(n.X), ast.Unparen(n.Y)} {
		if be, ok := op.(*ast.BinaryExpr); ok && be.Op == token.ADD {
			w.childConcats[be] = true
			w.markConcatChildren(be)
		}
	}
}

func (w *noAllocWalker) report(pos token.Pos, format string, args ...any) {
	w.pass.Reportf(pos, format, args...)
}

// freeVars returns the variables a function literal captures: used inside the
// literal, declared outside it, and neither package-level nor struct fields.
func freeVars(info *types.Info, lit *ast.FuncLit) []*types.Var {
	var out []*types.Var
	seen := make(map[*types.Var]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || seen[v] || v.IsField() {
			return true
		}
		if v.Pkg() == nil || (v.Parent() != nil && v.Parent() == v.Pkg().Scope()) {
			return true // package-level: accessed directly, not captured
		}
		if v.Pos() >= lit.Pos() && v.Pos() <= lit.End() {
			return true // declared inside the literal (params, locals)
		}
		seen[v] = true
		out = append(out, v)
		return true
	})
	return out
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Uint8 ||
		b.Kind() == types.Rune || b.Kind() == types.Int32)
}
