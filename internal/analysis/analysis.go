// Package analysis is protolint's home: a family of custom static analyzers
// that mechanically enforce the repository's protocol invariants — the
// properties the paper's correctness argument rests on but which, before this
// package, were only checked dynamically (tests, -race runs, AllocsPerRun
// gates and protocol.Explore).
//
// The analyzers are:
//
//   - exhaustive:  every switch over a protocol enum (protocol.State,
//     trace.EventKind, atomicobj.TxnState, transport.Verdict/Discipline,
//     core.TransportKind/NestedPolicy) and every string switch over the
//     Kind* message constants covers all members or panics in default.
//   - msgkind:     message-kind and census-key string literals outside the
//     kind-defining packages must be declared kind names, so measured
//     counts keep lining up with the paper's §4.4 tables.
//   - viewkind:    every package-level Kind* string constant must be
//     registered in the msgkind census universe, so new wire kinds
//     (membership views, heartbeats) cannot bypass the censuses.
//   - determinism: packages reachable from protocol.Explore may not read
//     wall-clock time, draw from the global math/rand source, or emit
//     messages/trace events while ranging over a map.
//   - seam:        outside internal/transport and internal/netsim, no raw
//     message channels or netsim endpoint use — cross-object messaging
//     goes through transport.Transport.
//   - timeseam:    the clock-seam packages (netsim, membership, transport,
//     core) arm every timer through vclock.Clock — no direct
//     time.Now/Sleep/After/NewTimer/NewTicker — so an injected
//     vclock.Virtual puts whole partition/churn scenarios on virtual time.
//   - locksend:    no channel send or blocking delivery call (including
//     SendTagged) while holding a sync.Mutex/RWMutex.
//   - lockorder:   the lock-acquisition graph across all analyzed packages
//     (which mutex class is held when another is acquired, propagated
//     through exported-function facts) must be acyclic — a cycle is a
//     static deadlock.
//   - resetcheck:  pool-recycled types (anything passed to sync.Pool.Put,
//     or carrying a Reset method) must assign or clear every struct field
//     in Reset, so a newly added field cannot leak state across pooled
//     sessions.
//   - noalloc:     functions annotated //caa:noalloc may not contain
//     allocating constructs (escaping composite literals, capturing
//     closures, interface boxing, fmt calls, un-presized append/make,
//     string<->[]byte conversions), turning the AllocsPerRun bench gates
//     into build-time errors.
//
// The framework deliberately mirrors golang.org/x/tools/go/analysis (Analyzer,
// Pass, diagnostics, facts, testdata fixtures) but is built on the standard
// library only, so the module stays dependency-free. cmd/protolint adapts the
// suite to the `go vet -vettool` protocol and serializes each package's
// exported facts (see facts.go) into the vetx cache slot the go command
// maintains per package, so cross-package analyzers see their dependencies'
// summaries without re-analyzing them.
//
// A finding is suppressed by a comment of the form
//
//	//protolint:allow <analyzer> <reason>
//
// on the flagged line or the line directly above it. The reason is mandatory:
// a bare "//protolint:allow <analyzer>" suppresses nothing and is itself
// reported, so reviewers always see why the rule does not apply. Suppressed
// findings are retained (marked Suppressed, with the reason) so the -json
// driver output can surface them.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and allow comments.
	Name string
	// Doc is a one-paragraph description of the rule.
	Doc string
	// Run performs the check, reporting findings through the pass.
	Run func(*Pass)
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
	// Suppressed marks a finding covered by a reasoned //protolint:allow
	// comment; SuppressReason carries the comment's justification. Suppressed
	// findings do not fail the build but are surfaced by `protolint -json`.
	Suppressed     bool
	SuppressReason string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Pass carries one typechecked package through one analyzer.
type Pass struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	// Imported holds the fact sets of previously analyzed packages, keyed by
	// import path. Nil when the driver has no facts (a fresh cache).
	Imported FactStore

	analyzer *Analyzer
	diags    *[]Diagnostic
	exported *FactSet
	allowed  map[string]map[int]string // filename -> line -> suppression reason
}

// PkgName returns the package's declared name (not its import path). The
// analyzers match repository packages by name so that the same rules apply to
// the real tree and to the self-contained fixtures under testdata/src.
func (p *Pass) PkgName() string { return p.Pkg.Name() }

// Reportf records a finding. A reasoned allow comment on the same or the
// preceding line marks it suppressed instead of dropping it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	d := Diagnostic{
		Analyzer: p.analyzer.Name,
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
	}
	if lines := p.allowed[position.Filename]; lines != nil {
		if reason, ok := lines[position.Line]; ok {
			d.Suppressed, d.SuppressReason = true, reason
		} else if reason, ok := lines[position.Line-1]; ok {
			d.Suppressed, d.SuppressReason = true, reason
		}
	}
	*p.diags = append(*p.diags, d)
}

// InTestFile reports whether pos lies in a _test.go file. Some analyzers
// (determinism, seam, locksend) check only production code: tests may use
// timers, scratch channels and locks freely without affecting schedule replay.
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// Run applies the given analyzers to one typechecked package, resolving
// cross-package facts from imported, and returns the findings sorted by
// position (suppressed ones included, marked) together with the package's
// exported fact set.
func Run(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer, imported FactStore) ([]Diagnostic, *FactSet) {
	var diags []Diagnostic
	exported := NewFactSet()
	for _, a := range analyzers {
		allowed, bare := allowIndex(fset, files, a.Name)
		pass := &Pass{
			Fset:     fset,
			Files:    files,
			Pkg:      pkg,
			Info:     info,
			Imported: imported,
			analyzer: a,
			diags:    &diags,
			exported: exported,
			allowed:  allowed,
		}
		a.Run(pass)
		diags = append(diags, bare...)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return diags, exported
}

// All returns the full protolint suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		ExhaustiveAnalyzer,
		MsgKindAnalyzer,
		ViewKindAnalyzer,
		DeterminismAnalyzer,
		SeamAnalyzer,
		TimeSeamAnalyzer,
		LockSendAnalyzer,
		LockOrderAnalyzer,
		ResetCheckAnalyzer,
		NoAllocAnalyzer,
	}
}

// allowIndex maps filename -> line -> reason for every reasoned
// "//protolint:allow <name> <reason>" comment naming the given analyzer. A
// bare allow (no reason text) suppresses nothing; it is returned as a
// diagnostic instead, so the missing justification is itself a finding.
func allowIndex(fset *token.FileSet, files []*ast.File, name string) (map[string]map[int]string, []Diagnostic) {
	idx := make(map[string]map[int]string)
	var bare []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "protolint:allow") {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, "protolint:allow"))
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue
				}
				// The first field may list several analyzers: "a,b".
				match := false
				for _, n := range strings.Split(fields[0], ",") {
					if n == name {
						match = true
					}
				}
				if !match {
					continue
				}
				pos := fset.Position(c.Pos())
				reason := strings.Join(fields[1:], " ")
				if reason == "" {
					bare = append(bare, Diagnostic{
						Analyzer: name,
						Pos:      pos,
						Message: fmt.Sprintf("suppression %q is missing its reason: "+
							"write //protolint:allow %s <why the rule does not apply> (bare suppressions suppress nothing)",
							strings.TrimSpace(c.Text), name),
					})
					continue
				}
				if idx[pos.Filename] == nil {
					idx[pos.Filename] = make(map[int]string)
				}
				idx[pos.Filename][pos.Line] = reason
			}
		}
	}
	return idx, bare
}

// namedOf unwraps pointers and reports the (package name, type name) of a
// named type, or ok=false for anything else.
func namedOf(t types.Type) (pkg, name string, ok bool) {
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return "", "", false
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil {
		return "", "", false
	}
	return obj.Pkg().Name(), obj.Name(), true
}

// constObj resolves a case/argument expression to the constant object it
// names, if any (an identifier or a package-qualified selector).
func constObj(info *types.Info, e ast.Expr) *types.Const {
	var id *ast.Ident
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return nil
	}
	if c, ok := info.Uses[id].(*types.Const); ok {
		return c
	}
	return nil
}

// callee resolves the object a call expression invokes (function, method or
// builtin), or nil.
func callee(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		return info.Uses[fun.Sel]
	}
	return nil
}

// receiverType returns the type of the receiver expression of a method call
// (`x` in `x.M(...)`), or nil when the call is not selector-shaped.
func receiverType(info *types.Info, call *ast.CallExpr) types.Type {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	tv, ok := info.Types[sel.X]
	if !ok {
		return nil
	}
	return tv.Type
}

// isMethodNamed reports whether the call invokes a method with the given name
// on a value whose (possibly pointed-to) named type is pkg.typeName.
func isMethodNamed(info *types.Info, call *ast.CallExpr, pkg, typeName, method string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != method {
		return false
	}
	rt := receiverType(info, call)
	if rt == nil {
		return false
	}
	gotPkg, gotName, ok := namedOf(rt)
	return ok && gotPkg == pkg && gotName == typeName
}

// pkgFunc reports whether the call invokes a package-level function of the
// package with the given import path, returning its name.
func pkgFunc(info *types.Info, call *ast.CallExpr, pkgPath string) (string, bool) {
	obj := callee(info, call)
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return "", false
	}
	if fn.Type().(*types.Signature).Recv() != nil {
		return "", false // method, not a package-level function
	}
	return fn.Name(), true
}
