// Package analysis is protolint's home: a family of custom static analyzers
// that mechanically enforce the repository's protocol invariants — the
// properties the paper's correctness argument rests on but which, before this
// package, were only checked dynamically (tests and protocol.Explore).
//
// The analyzers are:
//
//   - exhaustive:  every switch over a protocol enum (protocol.State,
//     trace.EventKind, atomicobj.TxnState, transport.Verdict/Discipline,
//     core.TransportKind/NestedPolicy) and every string switch over the
//     Kind* message constants covers all members or panics in default.
//   - msgkind:     message-kind and census-key string literals outside the
//     kind-defining packages must be declared kind names, so measured
//     counts keep lining up with the paper's §4.4 tables.
//   - viewkind:    every package-level Kind* string constant must be
//     registered in the msgkind census universe, so new wire kinds
//     (membership views, heartbeats) cannot bypass the censuses.
//   - determinism: packages reachable from protocol.Explore may not read
//     wall-clock time, draw from the global math/rand source, or emit
//     messages/trace events while ranging over a map.
//   - seam:        outside internal/transport and internal/netsim, no raw
//     message channels or netsim endpoint use — cross-object messaging
//     goes through transport.Transport.
//   - locksend:    no channel send or blocking delivery call while holding
//     a sync.Mutex/RWMutex.
//
// The framework deliberately mirrors golang.org/x/tools/go/analysis (Analyzer,
// Pass, diagnostics, testdata fixtures) but is built on the standard library
// only, so the module stays dependency-free. cmd/protolint adapts the suite to
// the `go vet -vettool` protocol.
//
// A finding is suppressed by a comment of the form
//
//	//protolint:allow <analyzer> <reason>
//
// on the flagged line or the line directly above it. The reason is mandatory
// by convention (reviewers should see why the rule does not apply), though the
// suppressor only matches the analyzer name.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and allow comments.
	Name string
	// Doc is a one-paragraph description of the rule.
	Doc string
	// Run performs the check, reporting findings through the pass.
	Run func(*Pass)
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Pass carries one typechecked package through one analyzer.
type Pass struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	analyzer *Analyzer
	diags    *[]Diagnostic
	allowed  map[string]map[int]bool // filename -> lines carrying an allow comment for this analyzer
}

// PkgName returns the package's declared name (not its import path). The
// analyzers match repository packages by name so that the same rules apply to
// the real tree and to the self-contained fixtures under testdata/src.
func (p *Pass) PkgName() string { return p.Pkg.Name() }

// Reportf records a finding unless an allow comment suppresses it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if lines := p.allowed[position.Filename]; lines != nil {
		if lines[position.Line] || lines[position.Line-1] {
			return
		}
	}
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.analyzer.Name,
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
	})
}

// InTestFile reports whether pos lies in a _test.go file. Some analyzers
// (determinism, seam, locksend) check only production code: tests may use
// timers, scratch channels and locks freely without affecting schedule replay.
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// Run applies the given analyzers to one typechecked package and returns the
// surviving findings sorted by position.
func Run(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Fset:     fset,
			Files:    files,
			Pkg:      pkg,
			Info:     info,
			analyzer: a,
			diags:    &diags,
			allowed:  allowIndex(fset, files, a.Name),
		}
		a.Run(pass)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return diags
}

// All returns the full protolint suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		ExhaustiveAnalyzer,
		MsgKindAnalyzer,
		ViewKindAnalyzer,
		DeterminismAnalyzer,
		SeamAnalyzer,
		LockSendAnalyzer,
	}
}

// allowIndex maps filename -> set of lines carrying "//protolint:allow <name>"
// for the given analyzer.
func allowIndex(fset *token.FileSet, files []*ast.File, name string) map[string]map[int]bool {
	idx := make(map[string]map[int]bool)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "protolint:allow") {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, "protolint:allow"))
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue
				}
				// The first field may list several analyzers: "a,b".
				match := false
				for _, n := range strings.Split(fields[0], ",") {
					if n == name {
						match = true
					}
				}
				if !match {
					continue
				}
				pos := fset.Position(c.Pos())
				if idx[pos.Filename] == nil {
					idx[pos.Filename] = make(map[int]bool)
				}
				idx[pos.Filename][pos.Line] = true
			}
		}
	}
	return idx
}

// namedOf unwraps pointers and reports the (package name, type name) of a
// named type, or ok=false for anything else.
func namedOf(t types.Type) (pkg, name string, ok bool) {
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return "", "", false
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil {
		return "", "", false
	}
	return obj.Pkg().Name(), obj.Name(), true
}

// constObj resolves a case/argument expression to the constant object it
// names, if any (an identifier or a package-qualified selector).
func constObj(info *types.Info, e ast.Expr) *types.Const {
	var id *ast.Ident
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return nil
	}
	if c, ok := info.Uses[id].(*types.Const); ok {
		return c
	}
	return nil
}

// callee resolves the object a call expression invokes (function, method or
// builtin), or nil.
func callee(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		return info.Uses[fun.Sel]
	}
	return nil
}

// receiverType returns the type of the receiver expression of a method call
// (`x` in `x.M(...)`), or nil when the call is not selector-shaped.
func receiverType(info *types.Info, call *ast.CallExpr) types.Type {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	tv, ok := info.Types[sel.X]
	if !ok {
		return nil
	}
	return tv.Type
}

// isMethodNamed reports whether the call invokes a method with the given name
// on a value whose (possibly pointed-to) named type is pkg.typeName.
func isMethodNamed(info *types.Info, call *ast.CallExpr, pkg, typeName, method string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != method {
		return false
	}
	rt := receiverType(info, call)
	if rt == nil {
		return false
	}
	gotPkg, gotName, ok := namedOf(rt)
	return ok && gotPkg == pkg && gotName == typeName
}

// pkgFunc reports whether the call invokes a package-level function of the
// package with the given import path, returning its name.
func pkgFunc(info *types.Info, call *ast.CallExpr, pkgPath string) (string, bool) {
	obj := callee(info, call)
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return "", false
	}
	if fn.Type().(*types.Signature).Recv() != nil {
		return "", false // method, not a package-level function
	}
	return fn.Name(), true
}
