package analysis

import (
	"go/ast"
	"go/types"
)

// blockingSendMethods are method names that deliver a message and may block
// on the fabric (inbox backpressure, a full channel, a slow pump). Holding a
// mutex across one of them is the deadlock shape the Concurrent backend's
// lock striping exists to avoid: the pump that would drain the fabric is
// blocked on the very lock the sender holds.
var blockingSendMethods = map[string]bool{
	"Send": true, "SendTo": true, "SendTagged": true, "Multicast": true,
	"Publish": true, "Deliver": true,
}

// LockSendAnalyzer flags channel sends and blocking delivery calls made while
// a sync.Mutex or sync.RWMutex is held. The analysis is intraprocedural and
// syntactic: it tracks Lock/RLock and Unlock/RUnlock pairs through
// straight-line code and branches, and treats `defer mu.Unlock()` as holding
// the lock for the rest of the function. Test files are exempt.
var LockSendAnalyzer = &Analyzer{
	Name: "locksend",
	Doc: "no channel send or blocking delivery call while holding a " +
		"sync.Mutex/RWMutex: copy under the lock, send after releasing it",
	Run: runLockSend,
}

func runLockSend(pass *Pass) {
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			walkLockStmts(pass, fn.Body.List, make(map[string]bool))
		}
	}
}

// walkLockStmts scans a statement list in order, tracking which mutexes are
// held. Branch bodies are scanned with a copy of the held set: a branch that
// unlocks and returns does not release the lock on the fall-through path,
// while a send inside a branch that follows its own unlock stays clean.
func walkLockStmts(pass *Pass, stmts []ast.Stmt, held map[string]bool) {
	for _, s := range stmts {
		switch s := s.(type) {
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				if lock, acquire, ok := mutexOp(pass, call); ok {
					if acquire {
						held[lock] = true
					} else {
						delete(held, lock)
					}
					continue
				}
				checkBlockingCall(pass, call, held)
			}
		case *ast.DeferStmt:
			if _, _, ok := mutexOp(pass, s.Call); ok {
				// defer mu.Unlock(): the lock stays held until the function
				// returns, so everything after it runs under the lock.
				continue
			}
			checkBlockingCall(pass, s.Call, held)
		case *ast.SendStmt:
			if len(held) > 0 {
				pass.Reportf(s.Pos(),
					"channel send while holding %s; copy under the lock and send after releasing it", anyLock(held))
			}
		case *ast.AssignStmt:
			for _, rhs := range s.Rhs {
				if call, ok := rhs.(*ast.CallExpr); ok {
					checkBlockingCall(pass, call, held)
				}
			}
		case *ast.ReturnStmt:
			for _, r := range s.Results {
				if call, ok := r.(*ast.CallExpr); ok {
					checkBlockingCall(pass, call, held)
				}
			}
		case *ast.IfStmt:
			walkLockStmts(pass, s.Body.List, copyHeld(held))
			if s.Else != nil {
				switch e := s.Else.(type) {
				case *ast.BlockStmt:
					walkLockStmts(pass, e.List, copyHeld(held))
				case *ast.IfStmt:
					walkLockStmts(pass, []ast.Stmt{e}, copyHeld(held))
				}
			}
		case *ast.ForStmt:
			walkLockStmts(pass, s.Body.List, copyHeld(held))
		case *ast.RangeStmt:
			walkLockStmts(pass, s.Body.List, copyHeld(held))
		case *ast.BlockStmt:
			walkLockStmts(pass, s.List, held)
		case *ast.SwitchStmt:
			for _, cc := range s.Body.List {
				if clause, ok := cc.(*ast.CaseClause); ok {
					walkLockStmts(pass, clause.Body, copyHeld(held))
				}
			}
		case *ast.TypeSwitchStmt:
			for _, cc := range s.Body.List {
				if clause, ok := cc.(*ast.CaseClause); ok {
					walkLockStmts(pass, clause.Body, copyHeld(held))
				}
			}
		case *ast.SelectStmt:
			for _, cc := range s.Body.List {
				if clause, ok := cc.(*ast.CommClause); ok {
					if send, isSend := clause.Comm.(*ast.SendStmt); isSend && len(held) > 0 {
						pass.Reportf(send.Pos(),
							"channel send while holding %s; copy under the lock and send after releasing it", anyLock(held))
					}
					walkLockStmts(pass, clause.Body, copyHeld(held))
				}
			}
		case *ast.GoStmt:
			// The spawned goroutine does not hold the caller's locks; its
			// body is scanned by the FuncDecl walk when it is a method, and
			// inline closures start from an empty held set.
			if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
				walkLockStmts(pass, lit.Body.List, make(map[string]bool))
			}
		}
	}
}

// checkBlockingCall reports a blocking delivery call made while any lock is
// held, and descends into immediately-invoked function literals.
func checkBlockingCall(pass *Pass, call *ast.CallExpr, held map[string]bool) {
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		// func(){...}() runs synchronously under the caller's locks.
		walkLockStmts(pass, lit.Body.List, copyHeld(held))
		return
	}
	if len(held) == 0 {
		return
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !blockingSendMethods[sel.Sel.Name] {
		return
	}
	// Only flag calls that resolve to methods (delivery APIs are methods on
	// transports, ports and endpoints).
	if _, isFunc := callee(pass.Info, call).(*types.Func); !isFunc {
		return
	}
	pass.Reportf(call.Pos(),
		"%s call while holding %s may deadlock against the delivery pump; copy under the lock and send after releasing it",
		sel.Sel.Name, anyLock(held))
}

// mutexOp classifies a call as Lock/RLock (acquire=true) or Unlock/RUnlock
// (acquire=false) on a sync.Mutex or sync.RWMutex, returning the rendered
// receiver expression as the lock's identity.
func mutexOp(pass *Pass, call *ast.CallExpr) (lock string, acquire, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", false, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "TryLock", "TryRLock":
		acquire = true
	case "Unlock", "RUnlock":
		acquire = false
	default:
		return "", false, false
	}
	rt := receiverType(pass.Info, call)
	if rt == nil {
		return "", false, false
	}
	pkgName, typeName, isNamed := namedOf(rt)
	if !isNamed || pkgName != "sync" || (typeName != "Mutex" && typeName != "RWMutex") {
		return "", false, false
	}
	return types.ExprString(sel.X), acquire, true
}

func copyHeld(held map[string]bool) map[string]bool {
	out := make(map[string]bool, len(held))
	for k := range held {
		out[k] = true
	}
	return out
}

func anyLock(held map[string]bool) string {
	best := ""
	for k := range held {
		if best == "" || k < best {
			best = k
		}
	}
	return best
}
