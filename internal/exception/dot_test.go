package exception

import (
	"errors"
	"strings"
	"testing"
)

func TestWriteDOT(t *testing.T) {
	tree := AircraftTree()
	var b strings.Builder
	if err := tree.WriteDOT(&b, "aircraft", "left_engine_exception"); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`digraph "aircraft" {`,
		`"left_engine_exception" -> "emergency_engine_loss_exception";`,
		`"emergency_engine_loss_exception" -> "universal_exception";`,
		`shape=doubleoctagon`, // the root
		`fillcolor=lightgrey`, // the highlight
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errors.New("sink full") }

func TestWriteDOTError(t *testing.T) {
	if err := AircraftTree().WriteDOT(failWriter{}, "x"); err == nil {
		t.Error("write error must propagate")
	}
}
