package exception

import (
	"fmt"
	"testing"
)

func BenchmarkResolveChain(b *testing.B) {
	for _, size := range []int{8, 64, 512} {
		b.Run(fmt.Sprintf("size=%d", size), func(b *testing.B) {
			tree := ChainTree(size)
			set := []string{
				fmt.Sprintf("e%d", size),
				fmt.Sprintf("e%d", size/2),
				fmt.Sprintf("e%d", size/4+1),
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := tree.Resolve(set); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkResolveWide(b *testing.B) {
	bld := NewBuilder("root")
	for i := 0; i < 256; i++ {
		bld.Add(fmt.Sprintf("c%d", i), "root")
	}
	tree := bld.MustBuild()
	set := []string{"c0", "c100", "c200", "c255"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := tree.Resolve(set); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCovers(b *testing.B) {
	tree := ChainTree(128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := tree.Covers("e4", "e128"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildTree(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bld := NewBuilder("root")
		for j := 0; j < 64; j++ {
			bld.Add(fmt.Sprintf("c%d", j), "root")
		}
		if _, err := bld.Build(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReducedCovering(b *testing.B) {
	tree := ChainTree(64)
	rt, err := NewReducedTree(tree, "e1", "e17", "e33", "e49")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := rt.Covering("e64"); err != nil {
			b.Fatal(err)
		}
	}
}
