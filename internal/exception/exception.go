// Package exception implements the paper's exception model (§3.2): exceptions
// are organised into a resolution tree — a partial order in which "a higher
// exception has a handler which is intended to handle any lower level
// exception". Resolving a set of concurrently raised exceptions finds the
// least exception that covers the whole set.
//
// In the paper the tree is expressed as an OO class hierarchy (exceptions are
// classes declared by subtyping); here it is an explicit runtime structure,
// since the tree "must exist at run time so as to allow concurrent exceptions
// to be resolved".
package exception

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Exception is a raised exception instance: a name in some resolution tree
// plus free-form context. Equality of identity is by Name.
type Exception struct {
	Name   string
	Msg    string
	Origin string // object that raised it, informational
}

// E constructs an exception with just a name.
func E(name string) Exception { return Exception{Name: name} }

// String renders the exception.
func (e Exception) String() string {
	if e.Msg == "" {
		return e.Name
	}
	return fmt.Sprintf("%s(%s)", e.Name, e.Msg)
}

// IsZero reports whether e is the zero exception (the paper's "null").
func (e Exception) IsZero() bool { return e.Name == "" }

// Errors reported by tree construction and resolution.
var (
	ErrUnknownException = errors.New("exception: name not in resolution tree")
	ErrDuplicateName    = errors.New("exception: duplicate name in resolution tree")
	ErrEmptySet         = errors.New("exception: cannot resolve empty exception set")
	ErrNoRoot           = errors.New("exception: tree has no root")
)

// Tree is an immutable resolution tree. Build one with NewBuilder. The root
// is the universal exception: resolving any set always succeeds by falling
// back to the root.
type Tree struct {
	root   string
	parent map[string]string
	depth  map[string]int
	order  []string // insertion order, for deterministic iteration
}

// Builder accumulates tree nodes; Build validates and freezes the tree.
type Builder struct {
	root    string
	parent  map[string]string
	order   []string
	errList []error
}

// NewBuilder starts a tree whose root (universal exception) is named root.
func NewBuilder(root string) *Builder {
	b := &Builder{
		root:   root,
		parent: make(map[string]string),
		order:  []string{root},
	}
	if root == "" {
		b.errList = append(b.errList, ErrNoRoot)
	}
	b.parent[root] = ""
	return b
}

// Add declares child as a direct descendant of parent and returns the
// builder for chaining. Errors are reported by Build.
func (b *Builder) Add(child, parent string) *Builder {
	if _, dup := b.parent[child]; dup {
		b.errList = append(b.errList, fmt.Errorf("%w: %q", ErrDuplicateName, child))
		return b
	}
	if _, ok := b.parent[parent]; !ok {
		b.errList = append(b.errList, fmt.Errorf("%w: parent %q of %q", ErrUnknownException, parent, child))
		return b
	}
	b.parent[child] = parent
	b.order = append(b.order, child)
	return b
}

// Chain adds a descending chain under parent: names[0] is a child of parent,
// names[1] a child of names[0], and so on. Used to build the paper's §3.3
// "directed chain" trees.
func (b *Builder) Chain(parent string, names ...string) *Builder {
	for _, name := range names {
		b.Add(name, parent)
		parent = name
	}
	return b
}

// Build validates and returns the immutable tree.
func (b *Builder) Build() (*Tree, error) {
	if len(b.errList) > 0 {
		return nil, errors.Join(b.errList...)
	}
	t := &Tree{
		root:   b.root,
		parent: make(map[string]string, len(b.parent)),
		depth:  make(map[string]int, len(b.parent)),
		order:  make([]string, len(b.order)),
	}
	for k, v := range b.parent {
		t.parent[k] = v
	}
	copy(t.order, b.order)
	for _, name := range t.order {
		d := 0
		for cur := name; cur != t.root; cur = t.parent[cur] {
			d++
		}
		t.depth[name] = d
	}
	return t, nil
}

// MustBuild is Build that panics on error; for statically known trees.
func (b *Builder) MustBuild() *Tree {
	t, err := b.Build()
	if err != nil {
		panic(err)
	}
	return t
}

// Root returns the universal exception's name.
func (t *Tree) Root() string { return t.root }

// Names returns all exception names in declaration order.
func (t *Tree) Names() []string {
	out := make([]string, len(t.order))
	copy(out, t.order)
	return out
}

// Size returns the number of exceptions in the tree.
func (t *Tree) Size() int { return len(t.order) }

// Contains reports whether name is declared in the tree.
func (t *Tree) Contains(name string) bool {
	_, ok := t.parent[name]
	return ok
}

// Parent returns the parent of name ("" for the root) and whether name exists.
func (t *Tree) Parent(name string) (string, bool) {
	p, ok := t.parent[name]
	return p, ok
}

// Depth returns the distance from name to the root.
func (t *Tree) Depth(name string) (int, bool) {
	d, ok := t.depth[name]
	return d, ok
}

// Covers reports whether upper covers lower: upper is lower itself or one of
// its ancestors, i.e. upper's handler is intended to handle lower.
func (t *Tree) Covers(upper, lower string) (bool, error) {
	if !t.Contains(upper) {
		return false, fmt.Errorf("%w: %q", ErrUnknownException, upper)
	}
	if !t.Contains(lower) {
		return false, fmt.Errorf("%w: %q", ErrUnknownException, lower)
	}
	for cur := lower; ; {
		if cur == upper {
			return true, nil
		}
		if cur == t.root {
			return false, nil
		}
		cur = t.parent[cur]
	}
}

// Resolve returns the least exception covering every name in the set — the
// lowest common ancestor in the tree. Duplicates are permitted. This is the
// operation the chooser runs on LE_i ("resolve exceptions in LE_i; find E in
// the exception tree").
func (t *Tree) Resolve(names []string) (string, error) {
	if len(names) == 0 {
		return "", ErrEmptySet
	}
	for _, n := range names {
		if !t.Contains(n) {
			return "", fmt.Errorf("%w: %q", ErrUnknownException, n)
		}
	}
	acc := names[0]
	for _, n := range names[1:] {
		acc = t.lca(acc, n)
	}
	return acc, nil
}

// lca computes the lowest common ancestor of two declared names.
func (t *Tree) lca(a, b string) string {
	da, db := t.depth[a], t.depth[b]
	for da > db {
		a = t.parent[a]
		da--
	}
	for db > da {
		b = t.parent[b]
		db--
	}
	for a != b {
		a = t.parent[a]
		b = t.parent[b]
	}
	return a
}

// Ancestors returns the path from name (exclusive) up to the root
// (inclusive).
func (t *Tree) Ancestors(name string) ([]string, error) {
	if !t.Contains(name) {
		return nil, fmt.Errorf("%w: %q", ErrUnknownException, name)
	}
	var out []string
	for cur := name; cur != t.root; {
		cur = t.parent[cur]
		out = append(out, cur)
	}
	return out, nil
}

// String renders the tree as "child<parent" pairs sorted by name.
func (t *Tree) String() string {
	pairs := make([]string, 0, len(t.order))
	for _, name := range t.order {
		if name == t.root {
			continue
		}
		pairs = append(pairs, name+"<"+t.parent[name])
	}
	sort.Strings(pairs)
	return fmt.Sprintf("tree(root=%s %s)", t.root, strings.Join(pairs, " "))
}
