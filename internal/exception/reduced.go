package exception

import (
	"fmt"
	"sort"
	"strings"
)

// ReducedTree is the per-participant structure assumed by the 1986
// Campbell–Randell algorithm (§3.3): the subset of an action's exceptions for
// which a given participant has specific handlers. The new algorithm
// deliberately abolishes reduced trees (every participant must handle every
// declared exception); this type exists to implement the CR baseline and to
// demonstrate the "domino effect" the paper describes.
type ReducedTree struct {
	tree    *Tree
	handled map[string]bool
}

// NewReducedTree restricts tree to the named handled exceptions. The root is
// always considered handled (the "default handler" every participant could
// contain).
func NewReducedTree(tree *Tree, handled ...string) (*ReducedTree, error) {
	rt := &ReducedTree{tree: tree, handled: make(map[string]bool, len(handled)+1)}
	rt.handled[tree.Root()] = true
	for _, name := range handled {
		if !tree.Contains(name) {
			return nil, fmt.Errorf("%w: %q", ErrUnknownException, name)
		}
		rt.handled[name] = true
	}
	return rt, nil
}

// Tree returns the full underlying resolution tree.
func (rt *ReducedTree) Tree() *Tree { return rt.tree }

// Handles reports whether the participant has a specific handler for name.
func (rt *ReducedTree) Handles(name string) bool { return rt.handled[name] }

// Handled returns the handled names in sorted order.
func (rt *ReducedTree) Handled() []string {
	out := make([]string, 0, len(rt.handled))
	for name := range rt.handled {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Covering returns the nearest exception at or above name for which the
// participant has a handler. This is the CR algorithm's "third source" of
// exceptions: a participant informed of an exception it cannot handle
// "examines the exception tree, finds and raises an appropriate exception".
func (rt *ReducedTree) Covering(name string) (string, error) {
	if !rt.tree.Contains(name) {
		return "", fmt.Errorf("%w: %q", ErrUnknownException, name)
	}
	for cur := name; ; {
		if rt.handled[cur] {
			return cur, nil
		}
		if cur == rt.tree.Root() {
			return cur, nil
		}
		cur, _ = rt.tree.Parent(cur)
	}
}

// String renders the reduced tree.
func (rt *ReducedTree) String() string {
	return "reduced(" + strings.Join(rt.Handled(), " ") + ")"
}

// AircraftTree builds the paper's running example tree (§3.2):
//
//	universal_exception
//	  emergency_engine_loss_exception
//	    left_engine_exception
//	    right_engine_exception
func AircraftTree() *Tree {
	return NewBuilder("universal_exception").
		Add("emergency_engine_loss_exception", "universal_exception").
		Add("left_engine_exception", "emergency_engine_loss_exception").
		Add("right_engine_exception", "emergency_engine_loss_exception").
		MustBuild()
}

// ChainTree builds the §3.3 directed-chain tree e1 -> e2 -> ... -> en where
// e1 is the root and each e(k+1) is covered by e(k). Names are "e1".."en".
func ChainTree(n int) *Tree {
	b := NewBuilder("e1")
	for i := 2; i <= n; i++ {
		b.Add(fmt.Sprintf("e%d", i), fmt.Sprintf("e%d", i-1))
	}
	return b.MustBuild()
}
