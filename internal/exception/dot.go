package exception

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// WriteDOT renders the resolution tree in Graphviz DOT format, edges
// pointing from each exception to its covering parent (the direction
// resolution walks). Nodes in highlight are filled — used to visualise a
// raised set and its resolution.
func (t *Tree) WriteDOT(w io.Writer, name string, highlight ...string) error {
	hl := make(map[string]bool, len(highlight))
	for _, h := range highlight {
		hl[h] = true
	}
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", name)
	b.WriteString("  rankdir=BT;\n  node [shape=box];\n")
	names := t.Names()
	sort.Strings(names)
	for _, n := range names {
		attrs := ""
		if n == t.root {
			attrs = ` shape=doubleoctagon`
		}
		if hl[n] {
			attrs += ` style=filled fillcolor=lightgrey`
		}
		fmt.Fprintf(&b, "  %q [label=%q%s];\n", n, n, attrs)
	}
	for _, n := range names {
		if n == t.root {
			continue
		}
		fmt.Fprintf(&b, "  %q -> %q;\n", n, t.parent[n])
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}
