package exception

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func mustTree(t *testing.T, b *Builder) *Tree {
	t.Helper()
	tree, err := b.Build()
	if err != nil {
		t.Fatalf("build tree: %v", err)
	}
	return tree
}

func TestBuilderRejectsDuplicate(t *testing.T) {
	_, err := NewBuilder("root").Add("a", "root").Add("a", "root").Build()
	if !errors.Is(err, ErrDuplicateName) {
		t.Fatalf("want ErrDuplicateName, got %v", err)
	}
}

func TestBuilderRejectsUnknownParent(t *testing.T) {
	_, err := NewBuilder("root").Add("a", "nope").Build()
	if !errors.Is(err, ErrUnknownException) {
		t.Fatalf("want ErrUnknownException, got %v", err)
	}
}

func TestBuilderRejectsEmptyRoot(t *testing.T) {
	if _, err := NewBuilder("").Build(); !errors.Is(err, ErrNoRoot) {
		t.Fatalf("want ErrNoRoot, got %v", err)
	}
}

func TestTreeBasics(t *testing.T) {
	tree := AircraftTree()
	if got, want := tree.Root(), "universal_exception"; got != want {
		t.Errorf("root = %q, want %q", got, want)
	}
	if got, want := tree.Size(), 4; got != want {
		t.Errorf("size = %d, want %d", got, want)
	}
	if !tree.Contains("left_engine_exception") {
		t.Error("tree should contain left_engine_exception")
	}
	if tree.Contains("warp_core_breach") {
		t.Error("tree should not contain undeclared exception")
	}
	p, ok := tree.Parent("left_engine_exception")
	if !ok || p != "emergency_engine_loss_exception" {
		t.Errorf("parent = %q, %v", p, ok)
	}
	d, ok := tree.Depth("left_engine_exception")
	if !ok || d != 2 {
		t.Errorf("depth = %d, %v, want 2", d, ok)
	}
}

func TestCovers(t *testing.T) {
	tree := AircraftTree()
	tests := []struct {
		upper, lower string
		want         bool
	}{
		{"universal_exception", "left_engine_exception", true},
		{"emergency_engine_loss_exception", "left_engine_exception", true},
		{"left_engine_exception", "left_engine_exception", true},
		{"left_engine_exception", "right_engine_exception", false},
		{"left_engine_exception", "universal_exception", false},
		{"right_engine_exception", "emergency_engine_loss_exception", false},
	}
	for _, tt := range tests {
		got, err := tree.Covers(tt.upper, tt.lower)
		if err != nil {
			t.Fatalf("Covers(%q,%q): %v", tt.upper, tt.lower, err)
		}
		if got != tt.want {
			t.Errorf("Covers(%q,%q) = %v, want %v", tt.upper, tt.lower, got, tt.want)
		}
	}
}

func TestCoversUnknown(t *testing.T) {
	tree := AircraftTree()
	if _, err := tree.Covers("nope", "left_engine_exception"); !errors.Is(err, ErrUnknownException) {
		t.Errorf("want ErrUnknownException for upper, got %v", err)
	}
	if _, err := tree.Covers("universal_exception", "nope"); !errors.Is(err, ErrUnknownException) {
		t.Errorf("want ErrUnknownException for lower, got %v", err)
	}
}

func TestResolve(t *testing.T) {
	tree := AircraftTree()
	tests := []struct {
		name  string
		give  []string
		want  string
		isErr bool
	}{
		{name: "single", give: []string{"left_engine_exception"}, want: "left_engine_exception"},
		{name: "siblings", give: []string{"left_engine_exception", "right_engine_exception"},
			want: "emergency_engine_loss_exception"},
		{name: "with ancestor", give: []string{"left_engine_exception", "emergency_engine_loss_exception"},
			want: "emergency_engine_loss_exception"},
		{name: "with root", give: []string{"left_engine_exception", "universal_exception"},
			want: "universal_exception"},
		{name: "duplicates", give: []string{"left_engine_exception", "left_engine_exception"},
			want: "left_engine_exception"},
		{name: "empty", give: nil, isErr: true},
		{name: "unknown", give: []string{"nope"}, isErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := tree.Resolve(tt.give)
			if tt.isErr {
				if err == nil {
					t.Fatalf("Resolve(%v) = %q, want error", tt.give, got)
				}
				return
			}
			if err != nil {
				t.Fatalf("Resolve(%v): %v", tt.give, err)
			}
			if got != tt.want {
				t.Errorf("Resolve(%v) = %q, want %q", tt.give, got, tt.want)
			}
		})
	}
}

func TestResolveChain(t *testing.T) {
	tree := ChainTree(8)
	got, err := tree.Resolve([]string{"e8", "e7"})
	if err != nil {
		t.Fatal(err)
	}
	if got != "e7" {
		t.Errorf("Resolve(e8,e7) = %q, want e7", got)
	}
	got, err = tree.Resolve([]string{"e3", "e8", "e5"})
	if err != nil {
		t.Fatal(err)
	}
	if got != "e3" {
		t.Errorf("Resolve(e3,e8,e5) = %q, want e3", got)
	}
}

func TestAncestors(t *testing.T) {
	tree := AircraftTree()
	got, err := tree.Ancestors("left_engine_exception")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"emergency_engine_loss_exception", "universal_exception"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Ancestors = %v, want %v", got, want)
	}
	root, err := tree.Ancestors("universal_exception")
	if err != nil {
		t.Fatal(err)
	}
	if len(root) != 0 {
		t.Errorf("Ancestors(root) = %v, want empty", root)
	}
	if _, err := tree.Ancestors("nope"); !errors.Is(err, ErrUnknownException) {
		t.Errorf("want ErrUnknownException, got %v", err)
	}
}

func TestExceptionValue(t *testing.T) {
	var zero Exception
	if !zero.IsZero() {
		t.Error("zero exception should report IsZero")
	}
	e := E("left_engine_exception")
	if e.IsZero() {
		t.Error("named exception should not be zero")
	}
	if e.String() != "left_engine_exception" {
		t.Errorf("String = %q", e.String())
	}
	e.Msg = "fire"
	if e.String() != "left_engine_exception(fire)" {
		t.Errorf("String = %q", e.String())
	}
}

// randomTree builds a random tree with n nodes named x0..x(n-1); x0 is root.
func randomTree(rng *rand.Rand, n int) *Tree {
	b := NewBuilder("x0")
	names := []string{"x0"}
	for i := 1; i < n; i++ {
		name := "x" + string(rune('a'+i%26)) + string(rune('0'+i/26))
		parent := names[rng.Intn(len(names))]
		b.Add(name, parent)
		names = append(names, name)
	}
	return b.MustBuild()
}

// TestResolvePropertyCoversAll checks the defining property of resolution:
// the result covers every input, and no strictly lower exception on the
// result's path does.
func TestResolvePropertyCoversAll(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func(seed int64, pickRaw []uint8) bool {
		tree := randomTree(rng, 12)
		names := tree.Names()
		if len(pickRaw) == 0 {
			pickRaw = []uint8{0}
		}
		if len(pickRaw) > 6 {
			pickRaw = pickRaw[:6]
		}
		var set []string
		for _, p := range pickRaw {
			set = append(set, names[int(p)%len(names)])
		}
		res, err := tree.Resolve(set)
		if err != nil {
			return false
		}
		for _, n := range set {
			ok, err := tree.Covers(res, n)
			if err != nil || !ok {
				return false
			}
		}
		// Minimality: res's children on the path cannot cover the whole set
		// (i.e. res is the least such). Equivalent check: unless res is in
		// the set itself, at least two inputs diverge directly below res.
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestResolveCommutativeAssociative checks Resolve is order-insensitive and
// foldable — required for the chooser to compute the same answer regardless
// of LE arrival order.
func TestResolveCommutativeAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tree := randomTree(rng, 20)
	names := tree.Names()
	f := func(idx []uint8) bool {
		if len(idx) == 0 {
			return true
		}
		if len(idx) > 8 {
			idx = idx[:8]
		}
		set := make([]string, len(idx))
		for i, p := range idx {
			set[i] = names[int(p)%len(names)]
		}
		r1, err1 := tree.Resolve(set)
		rev := make([]string, len(set))
		for i := range set {
			rev[i] = set[len(set)-1-i]
		}
		r2, err2 := tree.Resolve(rev)
		if err1 != nil || err2 != nil {
			return false
		}
		// Fold pairwise.
		acc := set[0]
		for _, n := range set[1:] {
			var err error
			acc, err = tree.Resolve([]string{acc, n})
			if err != nil {
				return false
			}
		}
		return r1 == r2 && r1 == acc
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestReducedTreeCovering(t *testing.T) {
	tree := ChainTree(8)
	// O1 handles odd exceptions, O2 handles even ones — the §3.3 domino
	// example.
	odd, err := NewReducedTree(tree, "e1", "e3", "e5", "e7")
	if err != nil {
		t.Fatal(err)
	}
	even, err := NewReducedTree(tree, "e2", "e4", "e6", "e8")
	if err != nil {
		t.Fatal(err)
	}
	got, err := odd.Covering("e8")
	if err != nil || got != "e7" {
		t.Errorf("odd.Covering(e8) = %q, %v; want e7", got, err)
	}
	got, err = even.Covering("e7")
	if err != nil || got != "e6" {
		t.Errorf("even.Covering(e7) = %q, %v; want e6", got, err)
	}
	got, err = odd.Covering("e1")
	if err != nil || got != "e1" {
		t.Errorf("odd.Covering(e1) = %q, %v; want e1", got, err)
	}
	if !odd.Handles("e3") || odd.Handles("e2") {
		t.Error("odd reduced tree membership wrong")
	}
}

func TestReducedTreeRootAlwaysHandled(t *testing.T) {
	tree := AircraftTree()
	rt, err := NewReducedTree(tree)
	if err != nil {
		t.Fatal(err)
	}
	if !rt.Handles("universal_exception") {
		t.Error("root must always be handled (default handler)")
	}
	got, err := rt.Covering("left_engine_exception")
	if err != nil || got != "universal_exception" {
		t.Errorf("Covering = %q, %v", got, err)
	}
}

func TestReducedTreeUnknown(t *testing.T) {
	tree := AircraftTree()
	if _, err := NewReducedTree(tree, "nope"); !errors.Is(err, ErrUnknownException) {
		t.Errorf("want ErrUnknownException, got %v", err)
	}
	rt, _ := NewReducedTree(tree)
	if _, err := rt.Covering("nope"); !errors.Is(err, ErrUnknownException) {
		t.Errorf("want ErrUnknownException, got %v", err)
	}
}

func TestChainTreeShape(t *testing.T) {
	tree := ChainTree(5)
	if tree.Size() != 5 {
		t.Fatalf("size = %d, want 5", tree.Size())
	}
	d, _ := tree.Depth("e5")
	if d != 4 {
		t.Errorf("depth(e5) = %d, want 4", d)
	}
	mustTree(t, NewBuilder("r")) // exercise helper
}
