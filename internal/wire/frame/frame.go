// Package frame defines the length-prefixed wire framing the TCP transport
// backend speaks on its net.Conn streams. A frame is one transport-layer
// message: the (from, to) object pair, the message kind and an opaque payload
// that has already been through the transport's codec seam (package wire's
// protocol-message codec, for protocol traffic).
//
// The package is deliberately a leaf — it depends only on ident — so the
// transport layer can frame and deframe without importing the
// protocol-message codec (which itself sits above the transport layer).
//
// Stream layout:
//
//	[4-byte big-endian body length][body]
//
// Body layout (all integers varint/uvarint encoded):
//
//	version byte | flags byte | From | To | [Action] | len(Kind) Kind | len(Payload) Payload
//
// Flags bit 0 records whether the payload was a Go string (rather than a
// byte slice) at the sending transport boundary, so the receiving side can
// restore the exact payload type even with no codec installed. Flags bit 1
// records the presence of the optional Action routing tag (varint, between
// To and the kind): untagged frames encode exactly as before the tag
// existed, so old frame corpora still decode.
//
// Decoding is defensive: truncated length prefixes, short bodies, oversized
// frames and trailing garbage all return errors, never panic, and never
// allocate more than MaxFrameSize bytes.
package frame

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/ident"
)

// Version identifies the framing format.
const Version byte = 1

// MaxFrameSize bounds the body length a frame may declare. A peer announcing
// a bigger frame is malformed (or malicious); readers reject it before
// allocating.
const MaxFrameSize = 1 << 20

// headerSize is the byte length of the frame length prefix.
const headerSize = 4

// Framing errors.
var (
	// ErrFrameTooLarge is returned when a length prefix exceeds MaxFrameSize
	// or an encoded frame would.
	ErrFrameTooLarge = errors.New("frame: frame exceeds size limit")
	// ErrShortFrame is returned when a stream ends inside a frame.
	ErrShortFrame = errors.New("frame: truncated frame")
	// ErrBadVersion is returned when a frame declares an unknown version.
	ErrBadVersion = errors.New("frame: unknown framing version")
	// ErrTrailingBytes is returned when a frame body has bytes after the
	// payload.
	ErrTrailingBytes = errors.New("frame: trailing bytes after payload")
	// ErrEmptyFrame is returned when a length prefix declares a zero-length
	// body.
	ErrEmptyFrame = errors.New("frame: empty frame body")
)

// flag bits.
const (
	flagStringPayload byte = 1 << 0
	flagAction        byte = 1 << 1
)

// Frame is one transport message in its on-the-wire shape.
type Frame struct {
	From ident.ObjectID
	To   ident.ObjectID
	Kind string
	// Action, when non-zero, is the top-level action the message belongs
	// to. It is carried in the envelope so a multiplexing receiver can
	// route the frame without decoding the payload.
	Action ident.ActionID
	// Payload is the message payload after the transport codec ran.
	Payload []byte
	// StringPayload records that the payload was a string (not a byte
	// slice) before framing.
	StringPayload bool
}

// Append serialises f (length prefix included) onto dst and returns the
// extended slice.
//
//caa:noalloc
func Append(dst []byte, f Frame) ([]byte, error) {
	if len(f.Kind)+len(f.Payload)+headerSize+32 > MaxFrameSize {
		//protolint:allow noalloc oversize-frame failure path, never taken by well-formed traffic
		return dst, fmt.Errorf("%w: kind %d + payload %d bytes", ErrFrameTooLarge, len(f.Kind), len(f.Payload))
	}
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0) // length prefix, patched below
	var flags byte
	if f.StringPayload {
		flags |= flagStringPayload
	}
	if f.Action != 0 {
		flags |= flagAction
	}
	dst = append(dst, Version, flags)
	dst = binary.AppendVarint(dst, int64(f.From))
	dst = binary.AppendVarint(dst, int64(f.To))
	if f.Action != 0 {
		dst = binary.AppendVarint(dst, int64(f.Action))
	}
	dst = binary.AppendUvarint(dst, uint64(len(f.Kind)))
	dst = append(dst, f.Kind...)
	dst = binary.AppendUvarint(dst, uint64(len(f.Payload)))
	dst = append(dst, f.Payload...)
	body := len(dst) - start - headerSize
	if body > MaxFrameSize {
		//protolint:allow noalloc oversize-frame failure path, never taken by well-formed traffic
		return dst[:start], fmt.Errorf("%w: body %d bytes", ErrFrameTooLarge, body)
	}
	binary.BigEndian.PutUint32(dst[start:], uint32(body))
	return dst, nil
}

// Encode serialises f into a fresh buffer, length prefix included.
func Encode(f Frame) ([]byte, error) {
	return Append(make([]byte, 0, headerSize+16+len(f.Kind)+len(f.Payload)), f)
}

// Write frames f onto w in one Write call (so concurrent writers that
// serialise per connection never interleave partial frames).
func Write(w io.Writer, f Frame) error {
	buf, err := Encode(f)
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// Read reads one frame from r. io.EOF is returned verbatim only on a clean
// boundary (no bytes of the next frame read); a stream ending mid-frame
// yields ErrShortFrame.
func Read(r io.Reader) (Frame, error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return Frame{}, io.EOF
		}
		return Frame{}, fmt.Errorf("%w: length prefix: %v", ErrShortFrame, err)
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 {
		return Frame{}, ErrEmptyFrame
	}
	if n > MaxFrameSize {
		return Frame{}, fmt.Errorf("%w: declared %d bytes", ErrFrameTooLarge, n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return Frame{}, fmt.Errorf("%w: body: %v", ErrShortFrame, err)
	}
	return Decode(body)
}

// Decode parses one frame body (without the length prefix).
func Decode(b []byte) (Frame, error) {
	var f Frame
	if len(b) < 2 {
		return f, fmt.Errorf("%w: body %d bytes", ErrShortFrame, len(b))
	}
	if b[0] != Version {
		return f, fmt.Errorf("%w: %d", ErrBadVersion, b[0])
	}
	f.StringPayload = b[1]&flagStringPayload != 0
	r := bytes.NewReader(b[2:])

	from, err := binary.ReadVarint(r)
	if err != nil {
		return f, fmt.Errorf("%w: from: %v", ErrShortFrame, err)
	}
	f.From = ident.ObjectID(from)
	to, err := binary.ReadVarint(r)
	if err != nil {
		return f, fmt.Errorf("%w: to: %v", ErrShortFrame, err)
	}
	f.To = ident.ObjectID(to)

	if b[1]&flagAction != 0 {
		action, err := binary.ReadVarint(r)
		if err != nil {
			return f, fmt.Errorf("%w: action: %v", ErrShortFrame, err)
		}
		f.Action = ident.ActionID(action)
	}

	kindLen, err := binary.ReadUvarint(r)
	if err != nil {
		return f, fmt.Errorf("%w: kind length: %v", ErrShortFrame, err)
	}
	if kindLen > uint64(r.Len()) {
		return f, fmt.Errorf("%w: kind length %d exceeds body", ErrShortFrame, kindLen)
	}
	if kindLen > 0 {
		kind := make([]byte, kindLen)
		if _, err := io.ReadFull(r, kind); err != nil {
			return f, fmt.Errorf("%w: kind: %v", ErrShortFrame, err)
		}
		f.Kind = string(kind)
	}

	payloadLen, err := binary.ReadUvarint(r)
	if err != nil {
		return f, fmt.Errorf("%w: payload length: %v", ErrShortFrame, err)
	}
	if payloadLen > uint64(r.Len()) {
		return f, fmt.Errorf("%w: payload length %d exceeds body", ErrShortFrame, payloadLen)
	}
	if payloadLen > 0 {
		f.Payload = make([]byte, payloadLen)
		if _, err := io.ReadFull(r, f.Payload); err != nil {
			return f, fmt.Errorf("%w: payload: %v", ErrShortFrame, err)
		}
	}
	if r.Len() != 0 {
		return f, fmt.Errorf("%w: %d bytes", ErrTrailingBytes, r.Len())
	}
	return f, nil
}
