package frame

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"strings"
	"testing"
	"testing/iotest"

	"repro/internal/ident"
)

func sample() Frame {
	return Frame{
		From:    3,
		To:      -7,
		Kind:    "k.test",
		Payload: []byte("hello frame"),
	}
}

func TestRoundTrip(t *testing.T) {
	cases := []Frame{
		sample(),
		{From: 1, To: 2}, // empty kind, nil payload
		{From: 0, To: 0, Kind: "", Payload: []byte{}}, // empty everything
		{From: 1 << 30, To: -(1 << 30), Kind: "x", Payload: bytes.Repeat([]byte{0xAB}, 4096)},
		{From: 9, To: 8, Kind: "s", Payload: []byte("text"), StringPayload: true},
	}
	for i, want := range cases {
		var buf bytes.Buffer
		if err := Write(&buf, want); err != nil {
			t.Fatalf("case %d: Write: %v", i, err)
		}
		got, err := Read(&buf)
		if err != nil {
			t.Fatalf("case %d: Read: %v", i, err)
		}
		if got.From != want.From || got.To != want.To || got.Kind != want.Kind ||
			got.StringPayload != want.StringPayload || !bytes.Equal(got.Payload, want.Payload) {
			t.Errorf("case %d: round trip mismatch:\n got %+v\nwant %+v", i, got, want)
		}
		if buf.Len() != 0 {
			t.Errorf("case %d: %d bytes left after Read", i, buf.Len())
		}
	}
}

func TestReadBackToBack(t *testing.T) {
	var buf bytes.Buffer
	for i := 0; i < 10; i++ {
		f := sample()
		f.From = ident.ObjectID(i)
		if err := Write(&buf, f); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		f, err := Read(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if f.From != ident.ObjectID(i) {
			t.Errorf("frame %d: From = %d", i, f.From)
		}
	}
	if _, err := Read(&buf); err != io.EOF {
		t.Errorf("Read at clean boundary = %v, want io.EOF", err)
	}
}

// TestReadPartialReads drives Read through a one-byte-at-a-time reader: the
// io.ReadFull calls must assemble frames correctly from fragmented reads.
func TestReadPartialReads(t *testing.T) {
	var buf bytes.Buffer
	want := sample()
	if err := Write(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := Read(iotest.OneByteReader(&buf))
	if err != nil {
		t.Fatalf("Read over one-byte reader: %v", err)
	}
	if got.Kind != want.Kind || !bytes.Equal(got.Payload, want.Payload) {
		t.Errorf("partial-read mismatch: got %+v", got)
	}
}

func TestReadTruncated(t *testing.T) {
	full, err := Encode(sample())
	if err != nil {
		t.Fatal(err)
	}
	// Every strict prefix must fail with ErrShortFrame (or io.EOF for the
	// zero-byte prefix, a clean boundary).
	for cut := 1; cut < len(full); cut++ {
		_, err := Read(bytes.NewReader(full[:cut]))
		if err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded successfully", cut, len(full))
		}
		if !errors.Is(err, ErrShortFrame) {
			t.Errorf("prefix %d: err = %v, want ErrShortFrame", cut, err)
		}
	}
	if _, err := Read(bytes.NewReader(nil)); err != io.EOF {
		t.Errorf("empty stream: err = %v, want io.EOF", err)
	}
}

func TestReadOversizedPrefix(t *testing.T) {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MaxFrameSize+1)
	// The reader must reject the frame on the prefix alone — the body is not
	// there, and a huge allocation would be the bug.
	r := io.MultiReader(bytes.NewReader(hdr[:]), strings.NewReader(strings.Repeat("x", 64)))
	_, err := Read(r)
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("oversized prefix: err = %v, want ErrFrameTooLarge", err)
	}
}

func TestReadZeroLengthBody(t *testing.T) {
	_, err := Read(bytes.NewReader([]byte{0, 0, 0, 0}))
	if !errors.Is(err, ErrEmptyFrame) {
		t.Errorf("zero-length body: err = %v, want ErrEmptyFrame", err)
	}
}

func TestEncodeOversizedFrame(t *testing.T) {
	f := Frame{Kind: "k", Payload: make([]byte, MaxFrameSize)}
	if _, err := Encode(f); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("Encode(oversized) = %v, want ErrFrameTooLarge", err)
	}
}

func TestDecodeBadVersion(t *testing.T) {
	body, err := Encode(sample())
	if err != nil {
		t.Fatal(err)
	}
	body[4] = 99 // version byte sits right after the 4-byte prefix
	_, err = Read(bytes.NewReader(body))
	if !errors.Is(err, ErrBadVersion) {
		t.Errorf("bad version: err = %v, want ErrBadVersion", err)
	}
}

func TestDecodeTrailingBytes(t *testing.T) {
	full, err := Encode(sample())
	if err != nil {
		t.Fatal(err)
	}
	// Grow the declared body length and append garbage: the decoder must
	// notice the leftover bytes.
	full = append(full, 0xFF, 0xFF)
	binary.BigEndian.PutUint32(full, uint32(len(full)-4))
	_, err = Read(bytes.NewReader(full))
	if !errors.Is(err, ErrTrailingBytes) {
		t.Errorf("trailing bytes: err = %v, want ErrTrailingBytes", err)
	}
}
