package wire

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/ident"
	"repro/internal/protocol"
)

func sampleMsg() protocol.Msg {
	return protocol.Msg{
		Kind:   protocol.KindException,
		Action: 3,
		Path:   []ident.ActionID{1, 2, 3},
		From:   7,
		Exc:    "left_engine_exception",
	}
}

func TestRoundTrip(t *testing.T) {
	tests := []protocol.Msg{
		sampleMsg(),
		{Kind: protocol.KindAck, Action: 1, From: 2},
		{Kind: protocol.KindHaveNested, Action: 9, Path: []ident.ActionID{9}, From: 1},
		{Kind: protocol.KindNestedCompleted, Action: 2, Path: []ident.ActionID{1, 2}, From: 3, Exc: ""},
		{Kind: protocol.KindCommit, Action: 1, Path: []ident.ActionID{1}, From: 4, Exc: "root"},
	}
	for _, give := range tests {
		b, err := Encode(give)
		if err != nil {
			t.Fatalf("encode %v: %v", give, err)
		}
		got, err := Decode(b)
		if err != nil {
			t.Fatalf("decode %v: %v", give, err)
		}
		if !reflect.DeepEqual(give, got) {
			t.Errorf("round trip: give %+v, got %+v", give, got)
		}
	}
}

func TestEncodeUnknownKind(t *testing.T) {
	if _, err := Encode(protocol.Msg{Kind: "Nonsense"}); !errors.Is(err, ErrBadKind) {
		t.Errorf("want ErrBadKind, got %v", err)
	}
}

func TestDecodeErrors(t *testing.T) {
	good, err := Encode(sampleMsg())
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name string
		give []byte
		want error
	}{
		{name: "empty", give: nil, want: ErrShortMessage},
		{name: "one byte", give: []byte{Format}, want: ErrShortMessage},
		{name: "bad version", give: []byte{99, 1, 0}, want: ErrBadFormat},
		{name: "bad kind", give: []byte{Format, 99, 0}, want: ErrBadKind},
		{name: "truncated", give: good[:len(good)-3], want: ErrShortMessage},
		{name: "trailing", give: append(append([]byte{}, good...), 0xFF), want: ErrTrailingBytes},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Decode(tt.give); !errors.Is(err, tt.want) {
				t.Errorf("Decode(%v) err = %v, want %v", tt.give, err, tt.want)
			}
		})
	}
}

// TestDecodeHostileLengths: length fields larger than the payload must fail
// cleanly rather than allocate or panic.
func TestDecodeHostileLengths(t *testing.T) {
	// Claim a path of 2^40 entries.
	hostile := []byte{Format, 1 /* Exception */, 2 /* action=1 */}
	hostile = append(hostile, 0x80, 0x80, 0x80, 0x80, 0x80, 0x20) // huge uvarint
	if _, err := Decode(hostile); !errors.Is(err, ErrShortMessage) {
		t.Errorf("hostile path length: %v", err)
	}
}

// TestRoundTripProperty: random messages survive the round trip bit-exactly.
func TestRoundTripProperty(t *testing.T) {
	kinds := []string{
		protocol.KindException, protocol.KindHaveNested,
		protocol.KindNestedCompleted, protocol.KindAck, protocol.KindCommit,
	}
	rng := rand.New(rand.NewSource(11))
	f := func(action int32, from int16, excRaw []byte, pathLen uint8) bool {
		m := protocol.Msg{
			Kind:   kinds[rng.Intn(len(kinds))],
			Action: ident.ActionID(action),
			From:   ident.ObjectID(from),
			Exc:    string(excRaw),
		}
		for i := 0; i < int(pathLen%16); i++ {
			m.Path = append(m.Path, ident.ActionID(rng.Intn(1000)))
		}
		b, err := Encode(m)
		if err != nil {
			return false
		}
		got, err := Decode(b)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(m, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestGobRoundTrip(t *testing.T) {
	give := sampleMsg()
	b, err := EncodeGob(give)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeGob(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(give, got) {
		t.Errorf("gob round trip: %+v vs %+v", give, got)
	}
}

func TestBinarySmallerThanGob(t *testing.T) {
	m := sampleMsg()
	bin, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	g, err := EncodeGob(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(bin) >= len(g) {
		t.Errorf("binary %dB not smaller than gob %dB", len(bin), len(g))
	}
}

func BenchmarkEncodeBinary(b *testing.B) {
	m := sampleMsg()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Encode(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeBinary(b *testing.B) {
	m := sampleMsg()
	buf, err := Encode(m)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeGob(b *testing.B) {
	m := sampleMsg()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := EncodeGob(m); err != nil {
			b.Fatal(err)
		}
	}
}
