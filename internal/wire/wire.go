// Package wire serialises protocol messages for transmission between the
// simulated network nodes. The paper's setting is nodes with disjoint
// address spaces that "must communicate by the exchange of messages over
// relatively narrow bandwidth communication channels"; encoding every
// protocol message to bytes (rather than passing Go pointers through the
// simulator) keeps the implementation honest about that boundary and gives
// the benchmarks a realistic per-message cost.
//
// The format is a compact hand-rolled binary encoding (version byte, message
// kind, varint-encoded identifiers, length-prefixed strings). EncodeGob /
// DecodeGob provide a stdlib-gob alternative used by the codec benchmarks.
package wire

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"

	"repro/internal/ident"
	"repro/internal/protocol"
)

// Format identifies the codec version.
const Format byte = 1

// Codec errors.
var (
	ErrShortMessage  = errors.New("wire: short message")
	ErrBadFormat     = errors.New("wire: unknown format version")
	ErrBadKind       = errors.New("wire: unknown message kind")
	ErrTrailingBytes = errors.New("wire: trailing bytes after message")
)

// kind codes on the wire.
var kindCodes = map[string]byte{
	protocol.KindException:       1,
	protocol.KindHaveNested:      2,
	protocol.KindNestedCompleted: 3,
	protocol.KindAck:             4,
	protocol.KindCommit:          5,
}

var kindNames = map[byte]string{
	1: protocol.KindException,
	2: protocol.KindHaveNested,
	3: protocol.KindNestedCompleted,
	4: protocol.KindAck,
	5: protocol.KindCommit,
}

// Encode serialises a protocol message.
func Encode(m protocol.Msg) ([]byte, error) {
	code, ok := kindCodes[m.Kind]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrBadKind, m.Kind)
	}
	buf := make([]byte, 0, 16+len(m.Exc)+8*len(m.Path))
	buf = append(buf, Format, code)
	buf = binary.AppendVarint(buf, int64(m.Action))
	buf = binary.AppendUvarint(buf, uint64(len(m.Path)))
	for _, a := range m.Path {
		buf = binary.AppendVarint(buf, int64(a))
	}
	buf = binary.AppendVarint(buf, int64(m.From))
	buf = binary.AppendUvarint(buf, uint64(len(m.Exc)))
	buf = append(buf, m.Exc...)
	return buf, nil
}

// Decode parses a message encoded by Encode.
func Decode(b []byte) (protocol.Msg, error) {
	var m protocol.Msg
	if len(b) < 2 {
		return m, ErrShortMessage
	}
	if b[0] != Format {
		return m, fmt.Errorf("%w: %d", ErrBadFormat, b[0])
	}
	kind, ok := kindNames[b[1]]
	if !ok {
		return m, fmt.Errorf("%w: code %d", ErrBadKind, b[1])
	}
	m.Kind = kind
	r := bytes.NewReader(b[2:])

	action, err := binary.ReadVarint(r)
	if err != nil {
		return m, fmt.Errorf("%w: action: %v", ErrShortMessage, err)
	}
	m.Action = ident.ActionID(action)

	pathLen, err := binary.ReadUvarint(r)
	if err != nil {
		return m, fmt.Errorf("%w: path length: %v", ErrShortMessage, err)
	}
	if pathLen > uint64(r.Len()) {
		return m, fmt.Errorf("%w: path length %d exceeds payload", ErrShortMessage, pathLen)
	}
	if pathLen > 0 {
		m.Path = make([]ident.ActionID, pathLen)
		for i := range m.Path {
			v, err := binary.ReadVarint(r)
			if err != nil {
				return m, fmt.Errorf("%w: path[%d]: %v", ErrShortMessage, i, err)
			}
			m.Path[i] = ident.ActionID(v)
		}
	}

	from, err := binary.ReadVarint(r)
	if err != nil {
		return m, fmt.Errorf("%w: from: %v", ErrShortMessage, err)
	}
	m.From = ident.ObjectID(from)

	excLen, err := binary.ReadUvarint(r)
	if err != nil {
		return m, fmt.Errorf("%w: exc length: %v", ErrShortMessage, err)
	}
	if excLen > uint64(r.Len()) {
		return m, fmt.Errorf("%w: exc length %d exceeds payload", ErrShortMessage, excLen)
	}
	if excLen > 0 {
		excBytes := make([]byte, excLen)
		if _, err := r.Read(excBytes); err != nil {
			return m, fmt.Errorf("%w: exc: %v", ErrShortMessage, err)
		}
		m.Exc = string(excBytes)
	}
	if r.Len() != 0 {
		return m, ErrTrailingBytes
	}
	return m, nil
}

// Codec plugs the binary encoding into the transport layer's codec seam
// (transport.Codec): protocol messages cross the fabric as bytes and are
// decoded back at the receiving port, so neither side ever shares a Go
// pointer with its peer. Values of other types pass through untouched,
// letting non-protocol traffic (e.g. group control metadata) stay native.
type Codec struct{}

// Encode implements transport.Codec.
func (Codec) Encode(v any) (any, error) {
	if m, ok := v.(protocol.Msg); ok {
		return Encode(m)
	}
	return v, nil
}

// Decode implements transport.Codec.
func (Codec) Decode(v any) (any, error) {
	if b, ok := v.([]byte); ok {
		m, err := Decode(b)
		if err != nil {
			return nil, err
		}
		return m, nil
	}
	return v, nil
}

// EncodeGob serialises a message with encoding/gob (comparison codec).
func EncodeGob(m protocol.Msg) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(m); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeGob parses a message encoded by EncodeGob.
func DecodeGob(b []byte) (protocol.Msg, error) {
	var m protocol.Msg
	err := gob.NewDecoder(bytes.NewReader(b)).Decode(&m)
	return m, err
}
