package wire

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestDecodeNeverPanics feeds random byte soup to Decode: it must return an
// error or a message, never panic or over-allocate.
func TestDecodeNeverPanics(t *testing.T) {
	f := func(b []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("Decode(%v) panicked: %v", b, r)
			}
		}()
		_, _ = Decode(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestDecodeMutatedValidMessages flips bytes of valid encodings: decoding
// must either fail cleanly or produce some message — never panic.
func TestDecodeMutatedValidMessages(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	base, err := Encode(sampleMsg())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		mutated := append([]byte{}, base...)
		// Flip 1-3 random bytes.
		for j := 0; j < 1+rng.Intn(3); j++ {
			pos := rng.Intn(len(mutated))
			mutated[pos] ^= byte(1 << rng.Intn(8))
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("mutation %v panicked: %v", mutated, r)
				}
			}()
			_, _ = Decode(mutated)
		}()
	}
}
