package wire

import (
	"bytes"
	"encoding/binary"
	"io"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/wire/frame"
)

// TestDecodeNeverPanics feeds random byte soup to Decode: it must return an
// error or a message, never panic or over-allocate.
func TestDecodeNeverPanics(t *testing.T) {
	f := func(b []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("Decode(%v) panicked: %v", b, r)
			}
		}()
		_, _ = Decode(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestDecodeMutatedValidMessages flips bytes of valid encodings: decoding
// must either fail cleanly or produce some message — never panic.
func TestDecodeMutatedValidMessages(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	base, err := Encode(sampleMsg())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		mutated := append([]byte{}, base...)
		// Flip 1-3 random bytes.
		for j := 0; j < 1+rng.Intn(3); j++ {
			pos := rng.Intn(len(mutated))
			mutated[pos] ^= byte(1 << rng.Intn(8))
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("mutation %v panicked: %v", mutated, r)
				}
			}()
			_, _ = Decode(mutated)
		}()
	}
}

// sampleFrame is a representative frame carrying a wire-encoded protocol
// message, the payload shape the TCP backend actually ships.
func sampleFrame(t *testing.T) frame.Frame {
	t.Helper()
	payload, err := Encode(sampleMsg())
	if err != nil {
		t.Fatal(err)
	}
	return frame.Frame{From: 2, To: 5, Kind: sampleMsg().Kind, Payload: payload}
}

// TestFrameReadNeverPanics feeds random byte soup to the frame reader. Every
// outcome must be an error or a frame — never a panic, and never an
// allocation beyond the frame size limit (enforced structurally: declared
// lengths above MaxFrameSize are rejected before allocating).
func TestFrameReadNeverPanics(t *testing.T) {
	f := func(b []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("frame.Read(%v) panicked: %v", b, r)
			}
		}()
		r := bytes.NewReader(b)
		for {
			if _, err := frame.Read(r); err != nil {
				break
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestFrameReadTruncatedPrefixes cuts a valid frame stream at every byte
// offset: a mid-frame cut must return ErrShortFrame (or clean io.EOF at a
// boundary), never a panic or a bogus frame.
func TestFrameReadTruncatedPrefixes(t *testing.T) {
	full, err := frame.Encode(sampleFrame(t))
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(full); cut++ {
		_, err := frame.Read(bytes.NewReader(full[:cut]))
		if cut == 0 {
			if err != io.EOF {
				t.Errorf("cut 0: err = %v, want io.EOF", err)
			}
			continue
		}
		if err == nil {
			t.Fatalf("truncated stream of %d/%d bytes produced a frame", cut, len(full))
		}
	}
}

// TestFrameReadOversizedDeclarations fabricates length prefixes beyond the
// frame size limit: the reader must reject them without reading (or
// allocating) the declared body.
func TestFrameReadOversizedDeclarations(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		n := frame.MaxFrameSize + 1 + rng.Intn(1<<28)
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], uint32(n))
		if _, err := frame.Read(bytes.NewReader(hdr[:])); err == nil {
			t.Fatalf("declared body of %d bytes accepted", n)
		}
	}
}

// TestFrameReadMutatedBodies flips bytes of valid frame streams: decoding
// must fail cleanly or produce some frame — never panic.
func TestFrameReadMutatedBodies(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	base, err := frame.Encode(sampleFrame(t))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		mutated := append([]byte{}, base...)
		for j := 0; j < 1+rng.Intn(3); j++ {
			pos := rng.Intn(len(mutated))
			mutated[pos] ^= byte(1 << rng.Intn(8))
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("mutation %v panicked: %v", mutated, r)
				}
			}()
			r := bytes.NewReader(mutated)
			for {
				if _, err := frame.Read(r); err != nil {
					return
				}
			}
		}()
	}
}

// TestFrameProtocolRoundTrip pins the composition the TCP backend relies on:
// protocol message -> wire bytes -> frame -> wire bytes -> protocol message
// is the identity.
func TestFrameProtocolRoundTrip(t *testing.T) {
	want := sampleMsg()
	payload, err := Encode(want)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := frame.Write(&buf, frame.Frame{From: 1, To: 2, Kind: want.Kind, Payload: payload}); err != nil {
		t.Fatal(err)
	}
	f, err := frame.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(f.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != want.Kind || got.Action != want.Action || got.From != want.From || got.Exc != want.Exc {
		t.Errorf("round trip mismatch: got %+v, want %+v", got, want)
	}
}
