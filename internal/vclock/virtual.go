package vclock

import (
	"runtime"
	"time"
)

// Virtual is a deterministic Clock. Time never moves on its own: Now returns
// the same instant until Advance / AdvanceToNext moves it, or — in auto mode
// (StartAuto) — until the auto-advance goroutine decides the process is
// quiescent and jumps to the earliest armed deadline.
//
// Quiescence detection is heuristic but safe: a generation counter is bumped
// every time a timer is armed, fired, stopped or reset (but NOT on Now), and
// the auto goroutine jumps only after the counter has been stable for a real
// -time grace window. If some goroutine is still doing productive work it
// will arm or consume a timer soon and push the jump back; if every
// goroutine is parked on a timer channel, nothing can bump the generation,
// so the jump proceeds and wakes exactly the earliest sleeper. Heartbeat and
// poll tickers are always armed in the near future while a run is live, so
// auto-advance never leaps to far-out deadlines (run timeouts, hour-long
// idle sleeps) past them.
type Virtual struct {
	mu      chMutex
	now     time.Time
	gen     uint64 // bumped on arm/fire/stop/reset, not on Now
	heap    timerHeap
	seq     uint64 // tiebreak for equal deadlines: FIFO arm order
	quantum time.Duration

	auto chan struct{} // non-nil while the auto goroutine runs; close to stop
}

// chMutex is a channel-based mutex so virtual-clock internals never hold a
// sync.Mutex while closing over user-visible channel sends (fires happen
// outside the critical section anyway; this keeps lockorder's class graph
// clean for the vclock package).
type chMutex chan struct{}

func newChMutex() chMutex { m := make(chMutex, 1); m <- struct{}{}; return m }

func (m chMutex) lock()   { <-m }
func (m chMutex) unlock() { m <- struct{}{} }

// NewVirtual returns a Virtual clock whose epoch is an arbitrary fixed
// instant. Time does not move until Advance/AdvanceToNext/StartAuto.
func NewVirtual() *Virtual {
	return &Virtual{
		mu: newChMutex(),
		// A fixed, recognisable epoch: virtual timestamps in traces are
		// offsets from this instant, not wall-clock readings.
		now: time.Date(2000, 1, 1, 0, 0, 0, 0, time.UTC),
	}
}

// Now implements Clock.
func (v *Virtual) Now() time.Time {
	v.mu.lock()
	t := v.now
	v.mu.unlock()
	return t
}

// NewTimer implements Clock.
func (v *Virtual) NewTimer(d time.Duration) Timer {
	t := &vTimer{clk: v, ch: make(chan time.Time, 1)}
	v.mu.lock()
	v.armLocked(t, d)
	v.mu.unlock()
	return t
}

// After implements Clock.
func (v *Virtual) After(d time.Duration) <-chan time.Time {
	return v.NewTimer(d).C()
}

// Sleep implements Clock.
func (v *Virtual) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	<-v.After(d)
}

// NewTicker implements Clock.
func (v *Virtual) NewTicker(d time.Duration) Ticker {
	if d <= 0 {
		panic("vclock: non-positive ticker period")
	}
	t := &vTicker{clk: v, period: d, ch: make(chan time.Time, 1)}
	v.mu.lock()
	v.armTickLocked(t)
	v.mu.unlock()
	return t
}

// Advance moves virtual time forward by d, firing every timer whose deadline
// falls inside the window, in deadline order. Tickers re-arm as they fire,
// so a 10ms Advance on a 1ms ticker yields ten ticks.
func (v *Virtual) Advance(d time.Duration) {
	v.mu.lock()
	v.advanceToLocked(v.now.Add(d))
	v.mu.unlock()
}

// AdvanceToNext jumps virtual time to the earliest armed deadline and fires
// everything due there. It reports whether a timer was armed; false means
// time did not move.
func (v *Virtual) AdvanceToNext() bool {
	v.mu.lock()
	defer v.mu.unlock()
	if len(v.heap) == 0 {
		return false
	}
	v.advanceToLocked(v.heap[0].deadline)
	return true
}

// Pending returns the number of armed timers (tickers count as one each).
func (v *Virtual) Pending() int {
	v.mu.lock()
	n := len(v.heap)
	v.mu.unlock()
	return n
}

// SetQuantum sets the auto-advance coalescing window: each auto jump moves
// time to the earliest armed deadline PLUS q, firing the whole batch of
// deadlines inside the window in one quiesce round instead of paying a grace
// wait per distinct deadline. Sub-quantum timer precision is traded away —
// a timer can fire up to q of virtual time "bunched" with its neighbours —
// so q must stay well below the shortest interval the workload relies on
// (heartbeat periods, detector timeouts). Zero (the default) disables
// coalescing. Manual Advance/AdvanceToNext are unaffected.
func (v *Virtual) SetQuantum(q time.Duration) {
	if q < 0 {
		q = 0
	}
	v.mu.lock()
	v.quantum = q
	v.mu.unlock()
}

// StartAuto launches the auto-advance goroutine: whenever no timer activity
// (arm/fire/stop/reset) has been observed for the real-time window grace and
// at least one timer is armed, virtual time jumps to the earliest deadline
// (plus the SetQuantum coalescing window, if any). grace <= 0 selects a
// default suited to tests and benches: 50µs, widened to 200µs under the race
// detector, whose instrumentation stretches the gap between a timer fire and
// the woken goroutine's next arm. Call StopAuto when done; StartAuto on a
// running clock panics.
func (v *Virtual) StartAuto(grace time.Duration) {
	if grace <= 0 {
		grace = 50 * time.Microsecond
		if raceEnabled {
			grace = 200 * time.Microsecond
		}
	}
	v.mu.lock()
	if v.auto != nil {
		v.mu.unlock()
		panic("vclock: StartAuto on running Virtual")
	}
	stop := make(chan struct{})
	v.auto = stop
	v.mu.unlock()
	go v.autoLoop(stop, grace)
}

// StopAuto halts the auto-advance goroutine. It is idempotent and safe to
// call on a clock that never started auto mode.
func (v *Virtual) StopAuto() {
	v.mu.lock()
	stop := v.auto
	v.auto = nil
	v.mu.unlock()
	if stop != nil {
		close(stop)
	}
}

func (v *Virtual) autoLoop(stop chan struct{}, grace time.Duration) {
	// A yield-spin quiesce detector: check the generation counter on every
	// scheduler yield and jump as soon as it has been stable for a full
	// grace window of real time. Spinning (rather than sleeping on a ticker)
	// keeps the jump cadence at reaction-time + grace instead of quantizing
	// it to timer granularity, and every Gosched hands the processor to
	// whatever woken goroutine still has work to do — the activity we are
	// probing for. The idle arm parks on the heap-empty case so a stopped
	// workload does not burn a core.
	var lastGen uint64
	quiet := time.Now()
	first := true
	idleSpins := 0
	for {
		select {
		case <-stop:
			return
		default:
		}
		v.mu.lock()
		gen := v.gen
		pending := len(v.heap) > 0
		if first || gen != lastGen {
			first = false
			lastGen = gen
			quiet = time.Now()
		} else if pending && time.Since(quiet) >= grace {
			// A full quiet window: everything that could arm or consume a
			// timer is parked. Jump.
			v.advanceToLocked(v.heap[0].deadline.Add(v.quantum))
			lastGen = v.gen
			quiet = time.Now()
		}
		v.mu.unlock()
		if !pending {
			idleSpins++
			if idleSpins > 64 {
				// Nothing armed for a while: the workload is gone or between
				// phases. Back off to a real sleep.
				time.Sleep(grace)
			}
		} else {
			idleSpins = 0
		}
		runtime.Gosched()
	}
}

// advanceToLocked moves now to target, firing due timers in deadline order.
func (v *Virtual) advanceToLocked(target time.Time) {
	for len(v.heap) > 0 && !v.heap[0].deadline.After(target) {
		e := v.heap.pop()
		v.now = e.deadline
		v.gen++
		e.fire(v)
	}
	if target.After(v.now) {
		v.now = target
	}
}

func (v *Virtual) armLocked(t *vTimer, d time.Duration) {
	t.armed = true
	v.seq++
	v.gen++
	v.heap.push(&entry{deadline: v.now.Add(d), seq: v.seq, timer: t})
}

func (v *Virtual) armTickLocked(t *vTicker) {
	v.seq++
	v.gen++
	v.heap.push(&entry{deadline: v.now.Add(t.period), seq: v.seq, ticker: t})
}

// removeLocked drops the heap entry owned by owner (a *vTimer or *vTicker).
// Reports whether an entry was found (i.e. the timer was still armed).
func (v *Virtual) removeLocked(owner any) bool {
	for i, e := range v.heap {
		if e.timer == owner || (e.ticker != nil && any(e.ticker) == owner) {
			v.heap.remove(i)
			v.gen++
			return true
		}
	}
	return false
}

// entry is one armed deadline: exactly one of timer/ticker is set.
type entry struct {
	deadline time.Time
	seq      uint64
	timer    *vTimer
	ticker   *vTicker
}

// fire delivers the deadline. Called with v.mu held; channel sends are
// non-blocking onto 1-buffered channels, matching time.Timer semantics
// (a slow ticker consumer loses ticks rather than stalling the clock).
func (e *entry) fire(v *Virtual) {
	if e.timer != nil {
		e.timer.armed = false
		select {
		case e.timer.ch <- e.deadline:
		default:
		}
		return
	}
	select {
	case e.ticker.ch <- e.deadline:
	default:
	}
	if !e.ticker.stopped {
		v.seq++
		v.heap.push(&entry{deadline: e.deadline.Add(e.ticker.period), seq: v.seq, ticker: e.ticker})
	}
}

type vTimer struct {
	clk *Virtual
	//protolint:allow resetcheck Reset is the standard timer rearm (time.Timer.Reset semantics), not a pool recycle: the channel must survive rearming.
	ch chan time.Time
	//protolint:allow resetcheck Reset rearms the timer and sets armed itself; nothing is pool-recycled.
	armed bool // guarded by clk.mu
}

func (t *vTimer) C() <-chan time.Time { return t.ch }

func (t *vTimer) Stop() bool {
	t.clk.mu.lock()
	defer t.clk.mu.unlock()
	if !t.armed {
		return false
	}
	t.armed = false
	return t.clk.removeLocked(t)
}

func (t *vTimer) Reset(d time.Duration) bool {
	t.clk.mu.lock()
	defer t.clk.mu.unlock()
	was := t.armed
	if was {
		t.clk.removeLocked(t)
	}
	t.clk.armLocked(t, d)
	return was
}

type vTicker struct {
	clk     *Virtual
	period  time.Duration
	ch      chan time.Time
	stopped bool // guarded by clk.mu
}

func (t *vTicker) C() <-chan time.Time { return t.ch }

func (t *vTicker) Stop() {
	t.clk.mu.lock()
	defer t.clk.mu.unlock()
	if t.stopped {
		return
	}
	t.stopped = true
	t.clk.removeLocked(t)
}

// timerHeap is a deadline-ordered min-heap with FIFO tiebreak on seq.
type timerHeap []*entry

func (h timerHeap) less(i, j int) bool {
	if !h[i].deadline.Equal(h[j].deadline) {
		return h[i].deadline.Before(h[j].deadline)
	}
	return h[i].seq < h[j].seq
}

func (h *timerHeap) push(e *entry) {
	*h = append(*h, e)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		(*h)[i], (*h)[parent] = (*h)[parent], (*h)[i]
		i = parent
	}
}

func (h *timerHeap) pop() *entry {
	e := (*h)[0]
	h.remove(0)
	return e
}

func (h *timerHeap) remove(i int) {
	n := len(*h) - 1
	(*h)[i] = (*h)[n]
	(*h)[n] = nil
	*h = (*h)[:n]
	if i == n {
		return
	}
	// Sift down, then up (the swapped-in element may violate either way).
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && h.less(l, small) {
			small = l
		}
		if r < n && h.less(r, small) {
			small = r
		}
		if small == i {
			break
		}
		(*h)[i], (*h)[small] = (*h)[small], (*h)[i]
		i = small
	}
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		(*h)[i], (*h)[parent] = (*h)[parent], (*h)[i]
		i = parent
	}
}
