//go:build race

package vclock

// raceEnabled reports whether the race detector instruments this build; the
// auto-advance default grace widens with it (see StartAuto).
const raceEnabled = true
