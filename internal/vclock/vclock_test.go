package vclock

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestVirtualNowFrozen(t *testing.T) {
	v := NewVirtual()
	t0 := v.Now()
	if !v.Now().Equal(t0) {
		t.Fatal("virtual now moved without Advance")
	}
	v.Advance(3 * time.Second)
	if got := v.Now().Sub(t0); got != 3*time.Second {
		t.Fatalf("advance moved %v, want 3s", got)
	}
}

func TestVirtualTimerFiresInOrder(t *testing.T) {
	v := NewVirtual()
	a := v.NewTimer(10 * time.Millisecond)
	b := v.NewTimer(5 * time.Millisecond)
	v.Advance(20 * time.Millisecond)
	select {
	case tb := <-b.C():
		if got := tb.Sub(NewVirtual().Now()); got != 5*time.Millisecond {
			t.Fatalf("b fired at +%v, want +5ms", got)
		}
	default:
		t.Fatal("b did not fire")
	}
	select {
	case <-a.C():
	default:
		t.Fatal("a did not fire")
	}
}

func TestVirtualTimerStopReset(t *testing.T) {
	v := NewVirtual()
	tm := v.NewTimer(5 * time.Millisecond)
	if !tm.Stop() {
		t.Fatal("Stop on armed timer reported false")
	}
	if tm.Stop() {
		t.Fatal("second Stop reported true")
	}
	v.Advance(10 * time.Millisecond)
	select {
	case <-tm.C():
		t.Fatal("stopped timer fired")
	default:
	}
	if tm.Reset(5*time.Millisecond) != false {
		t.Fatal("Reset on disarmed timer reported true")
	}
	v.Advance(5 * time.Millisecond)
	select {
	case <-tm.C():
	default:
		t.Fatal("reset timer did not fire")
	}
}

func TestVirtualTickerRepeats(t *testing.T) {
	v := NewVirtual()
	tk := v.NewTicker(time.Millisecond)
	ticks := 0
	for i := 0; i < 5; i++ {
		v.Advance(time.Millisecond)
		select {
		case <-tk.C():
			ticks++
		default:
		}
	}
	if ticks != 5 {
		t.Fatalf("got %d ticks, want 5", ticks)
	}
	tk.Stop()
	v.Advance(10 * time.Millisecond)
	select {
	case <-tk.C():
		t.Fatal("stopped ticker ticked")
	default:
	}
	if n := v.Pending(); n != 0 {
		t.Fatalf("pending=%d after stop, want 0", n)
	}
}

// A 1ms ticker with a buffered channel loses ticks when nobody is reading —
// same contract as time.Ticker — rather than stalling Advance.
func TestVirtualTickerDropsWhenSlow(t *testing.T) {
	v := NewVirtual()
	tk := v.NewTicker(time.Millisecond)
	defer tk.Stop()
	v.Advance(10 * time.Millisecond)
	n := 0
	for {
		select {
		case <-tk.C():
			n++
			continue
		default:
		}
		break
	}
	if n != 1 {
		t.Fatalf("buffered ticks=%d, want 1 (channel is 1-buffered)", n)
	}
}

func TestVirtualAdvanceToNext(t *testing.T) {
	v := NewVirtual()
	t0 := v.Now()
	_ = v.NewTimer(7 * time.Millisecond)
	if !v.AdvanceToNext() {
		t.Fatal("AdvanceToNext found nothing")
	}
	if got := v.Now().Sub(t0); got != 7*time.Millisecond {
		t.Fatalf("jumped %v, want 7ms", got)
	}
	if v.AdvanceToNext() {
		t.Fatal("AdvanceToNext on empty heap reported true")
	}
}

func TestVirtualSleepWakesOnAdvance(t *testing.T) {
	v := NewVirtual()
	done := make(chan struct{})
	go func() {
		v.Sleep(50 * time.Millisecond)
		close(done)
	}()
	// Wait until the sleeper has armed its timer.
	for v.Pending() == 0 {
		time.Sleep(100 * time.Microsecond)
	}
	v.Advance(50 * time.Millisecond)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("sleeper not woken by Advance")
	}
}

// Auto mode: a chain of sleepers each waiting 10ms of virtual time completes
// in far less than 10ms×N of real time because the clock jumps as soon as
// everyone is parked.
func TestVirtualAutoAdvance(t *testing.T) {
	v := NewVirtual()
	v.StartAuto(100 * time.Microsecond)
	defer v.StopAuto()
	var wg sync.WaitGroup
	var order atomic.Int64
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 5; j++ {
				v.Sleep(10 * time.Millisecond)
				order.Add(1)
			}
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("auto-advance did not drive sleepers to completion")
	}
	if got := order.Load(); got != 20 {
		t.Fatalf("sleep iterations=%d, want 20", got)
	}
	// 20 sleeps × 10ms = 200ms of virtual time must have elapsed.
	if elapsed := v.Now().Sub(NewVirtual().Now()); elapsed < 50*time.Millisecond {
		t.Fatalf("virtual time advanced only %v", elapsed)
	}
}

// Auto mode must not jump past near-future periodic work to a far-out
// deadline: with a live 1ms ticker being consumed, an hour-long timer does
// not fire within the test.
func TestVirtualAutoHonorsNearTimers(t *testing.T) {
	v := NewVirtual()
	v.StartAuto(100 * time.Microsecond)
	defer v.StopAuto()
	far := v.NewTimer(time.Hour)
	tk := v.NewTicker(time.Millisecond)
	defer tk.Stop()
	ticks := 0
	deadline := time.After(500 * time.Millisecond)
	for ticks < 50 {
		select {
		case <-tk.C():
			ticks++
		case <-far.C():
			t.Fatal("auto-advance leapt to the hour timer past a live ticker")
		case <-deadline:
			t.Fatalf("only %d ticks in 500ms real time", ticks)
		}
	}
}

func TestRealClockBasics(t *testing.T) {
	c := Or(nil)
	if c == nil {
		t.Fatal("Or(nil) returned nil")
	}
	start := c.Now()
	c.Sleep(time.Millisecond)
	if !c.Now().After(start) {
		t.Fatal("real clock did not move")
	}
	tm := c.NewTimer(time.Millisecond)
	select {
	case <-tm.C():
	case <-time.After(2 * time.Second):
		t.Fatal("real timer did not fire")
	}
	tk := c.NewTicker(time.Millisecond)
	select {
	case <-tk.C():
	case <-time.After(2 * time.Second):
		t.Fatal("real ticker did not tick")
	}
	tk.Stop()
	select {
	case <-c.After(time.Millisecond):
	case <-time.After(2 * time.Second):
		t.Fatal("real After did not fire")
	}
}

func TestVirtualTimerResetWhileArmed(t *testing.T) {
	v := NewVirtual()
	tm := v.NewTimer(5 * time.Millisecond)
	if !tm.Reset(20 * time.Millisecond) {
		t.Fatal("Reset on armed timer reported false")
	}
	v.Advance(10 * time.Millisecond)
	select {
	case <-tm.C():
		t.Fatal("timer fired at old deadline after Reset")
	default:
	}
	v.Advance(10 * time.Millisecond)
	select {
	case <-tm.C():
	default:
		t.Fatal("timer did not fire at the reset deadline")
	}
}

func TestVirtualManyTimersHeapOrder(t *testing.T) {
	v := NewVirtual()
	t0 := v.Now()
	const n = 64
	timers := make([]Timer, n)
	for i := range timers {
		// Deadlines 64ms, 63ms, ..., 1ms — reverse arm order.
		timers[i] = v.NewTimer(time.Duration(n-i) * time.Millisecond)
	}
	var fired []time.Duration
	for v.AdvanceToNext() {
		for _, tm := range timers {
			select {
			case ft := <-tm.C():
				fired = append(fired, ft.Sub(t0))
			default:
			}
		}
	}
	if len(fired) != n {
		t.Fatalf("fired %d timers, want %d", len(fired), n)
	}
	for i := 1; i < len(fired); i++ {
		if fired[i] < fired[i-1] {
			t.Fatalf("out-of-order firing: %v after %v", fired[i], fired[i-1])
		}
	}
}
