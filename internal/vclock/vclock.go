// Package vclock is the repository's clock seam: every time-dependent
// component (heartbeat failure detection, membership polling, retransmission,
// reconnect backoff, run timeouts, body sleeps) reads time and arms timers
// through a Clock instead of the time package, so a whole distributed run can
// execute against a deterministic virtual clock.
//
// Two implementations are provided. Real delegates to package time and is the
// default everywhere — production behaviour is unchanged. Virtual keeps its
// own notion of "now" that only moves when told to: manually (Advance /
// AdvanceToNext) or automatically (StartAuto), where a background goroutine
// jumps straight to the next armed timer as soon as the process has been
// quiescent for a short real-time grace window — the moment every goroutine
// is parked waiting on a timer, waiting out a heartbeat period costs
// microseconds of real time instead of milliseconds of wall clock. That is
// what makes churn workloads (repeated partition/heal/rejoin cycles)
// benchable: BENCH_5's partition rows pay ~45 ms of real heartbeat silence
// per operation; the same scenario on the virtual clock runs two orders of
// magnitude faster.
//
// The protolint `timeseam` analyzer enforces the seam: packages netsim,
// membership, transport, group and core must not call time.Now / time.After /
// time.Sleep / time.NewTimer / time.NewTicker directly.
package vclock

import (
	"time"
)

// Timer is the seam's view of a one-shot timer. C is the firing channel;
// Stop and Reset follow time.Timer semantics.
type Timer interface {
	// C returns the channel the firing time is delivered on.
	C() <-chan time.Time
	// Stop disarms the timer; it reports whether the timer was still armed.
	Stop() bool
	// Reset re-arms the timer for d from now; it reports whether the timer
	// was still armed.
	Reset(d time.Duration) bool
}

// Ticker is the seam's view of a repeating timer.
type Ticker interface {
	// C returns the tick channel.
	C() <-chan time.Time
	// Stop disarms the ticker.
	Stop()
}

// Clock is the time source every clock-seam package depends on.
type Clock interface {
	// Now returns the current time on this clock.
	Now() time.Time
	// NewTimer arms a one-shot timer firing d from now.
	NewTimer(d time.Duration) Timer
	// After arms a one-shot timer and returns its channel.
	After(d time.Duration) <-chan time.Time
	// Sleep blocks the calling goroutine for d of this clock's time.
	Sleep(d time.Duration)
	// NewTicker arms a repeating timer with period d (d must be > 0).
	NewTicker(d time.Duration) Ticker
}

// Real is the production clock: a stateless wrapper over package time.
type Real struct{}

// System is the shared Real instance; Or(nil) returns it.
var System Clock = Real{}

// Or returns c, or the system Real clock when c is nil — the idiom every
// seam constructor uses to default its clock.
func Or(c Clock) Clock {
	if c == nil {
		return System
	}
	return c
}

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// Sleep implements Clock.
func (Real) Sleep(d time.Duration) { time.Sleep(d) }

// After implements Clock.
func (Real) After(d time.Duration) <-chan time.Time { return time.After(d) }

// NewTimer implements Clock.
func (Real) NewTimer(d time.Duration) Timer { return realTimer{t: time.NewTimer(d)} }

// NewTicker implements Clock.
func (Real) NewTicker(d time.Duration) Ticker { return realTicker{t: time.NewTicker(d)} }

type realTimer struct{ t *time.Timer }

func (r realTimer) C() <-chan time.Time        { return r.t.C }
func (r realTimer) Stop() bool                 { return r.t.Stop() }
func (r realTimer) Reset(d time.Duration) bool { return r.t.Reset(d) }

type realTicker struct{ t *time.Ticker }

func (r realTicker) C() <-chan time.Time { return r.t.C }
func (r realTicker) Stop()               { r.t.Stop() }
