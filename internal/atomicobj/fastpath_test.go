package atomicobj

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestAddCommitCreatesAndMerges(t *testing.T) {
	s := NewStore()
	tx := s.Begin()
	if err := tx.Add("ctr", 3); err != nil {
		t.Fatal(err)
	}
	if err := tx.Add("ctr", 4); err != nil {
		t.Fatal(err)
	}
	// Pending deltas are invisible until commit.
	if _, ok := s.Snapshot()["ctr"]; ok {
		t.Error("pending delta leaked into Snapshot")
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := s.Snapshot()["ctr"]; got != 7 {
		t.Errorf("ctr = %v, want 7", got)
	}
}

func TestAddAbortDiscards(t *testing.T) {
	s := NewStore()
	seed := s.Begin()
	if err := seed.Write("ctr", 10); err != nil {
		t.Fatal(err)
	}
	if err := seed.Commit(); err != nil {
		t.Fatal(err)
	}
	tx := s.Begin()
	if err := tx.Add("ctr", 5); err != nil {
		t.Fatal(err)
	}
	if err := tx.Add("fresh", 1); err != nil {
		t.Fatal(err)
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	snap := s.Snapshot()
	if snap["ctr"] != 10 {
		t.Errorf("ctr = %v, want 10 (delta must vanish on abort)", snap["ctr"])
	}
	if _, ok := snap["fresh"]; ok {
		t.Error("aborted delta created an object")
	}
}

// TestConcurrentAddsNeverDie: the headline property — commuting increments
// from many concurrent transactions on one hot counter never hit wait-die
// and the final value is the exact sum.
func TestConcurrentAddsNeverDie(t *testing.T) {
	s := NewStore()
	const workers = 16
	const perWorker = 200
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				tx := s.Begin()
				if err := tx.Add("hot", 1); err != nil {
					errs[w] = err
					_ = tx.Abort()
					return
				}
				if err := tx.Commit(); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v (the fast path must not die)", w, err)
		}
	}
	if got := s.Snapshot()["hot"]; got != workers*perWorker {
		t.Errorf("hot = %v, want %d", got, workers*perWorker)
	}
}

// TestOwnReadMaterializesPending: a transaction that Reads a key it has
// pending deltas on sees them folded in (materialised under its fresh lock),
// and commit keeps the folded value.
func TestOwnReadMaterializesPending(t *testing.T) {
	s := NewStore()
	seed := s.Begin()
	if err := seed.Write("ctr", 100); err != nil {
		t.Fatal(err)
	}
	if err := seed.Commit(); err != nil {
		t.Fatal(err)
	}
	tx := s.Begin()
	if err := tx.Add("ctr", 7); err != nil {
		t.Fatal(err)
	}
	v, err := tx.Read("ctr")
	if err != nil || v != 107 {
		t.Fatalf("read = %v, %v; want 107", v, err)
	}
	// Further Adds go in place under the now-held lock.
	if err := tx.Add("ctr", 1); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := s.Snapshot()["ctr"]; got != 108 {
		t.Errorf("ctr = %v, want 108", got)
	}
}

// TestMaterializeRepend: a child materialises an ancestor's pending delta
// (by Reading the key) and then aborts — the restore must push the
// ancestor's record back so the ancestor's commit still applies it.
func TestMaterializeRepend(t *testing.T) {
	s := NewStore()
	parent := s.Begin()
	if err := parent.Add("ctr", 5); err != nil {
		t.Fatal(err)
	}
	child, err := parent.BeginChild()
	if err != nil {
		t.Fatal(err)
	}
	v, err := child.Read("ctr")
	if err != nil || v != 5 {
		t.Fatalf("child read = %v, %v; want 5", v, err)
	}
	if err := child.Abort(); err != nil {
		t.Fatal(err)
	}
	if err := parent.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := s.Snapshot()["ctr"]; got != 5 {
		t.Errorf("ctr = %v, want 5 (parent's delta must survive the child abort)", got)
	}
}

// TestNestedAddAbsorb: a committed child's deltas become the parent's —
// merged on parent commit, discarded on parent abort.
func TestNestedAddAbsorb(t *testing.T) {
	for _, parentCommits := range []bool{true, false} {
		s := NewStore()
		parent := s.Begin()
		child, err := parent.BeginChild()
		if err != nil {
			t.Fatal(err)
		}
		if err := child.Add("ctr", 3); err != nil {
			t.Fatal(err)
		}
		if err := child.Commit(); err != nil {
			t.Fatal(err)
		}
		if parentCommits {
			if err := parent.Commit(); err != nil {
				t.Fatal(err)
			}
			if got := s.Snapshot()["ctr"]; got != 3 {
				t.Errorf("ctr = %v, want 3 after parent commit", got)
			}
		} else {
			if err := parent.Abort(); err != nil {
				t.Fatal(err)
			}
			if _, ok := s.Snapshot()["ctr"]; ok {
				t.Error("absorbed delta survived the parent abort")
			}
		}
	}
}

// TestNestedAddAbortDiscards: a child's own pending deltas vanish when the
// child aborts, leaving the parent untouched.
func TestNestedAddAbortDiscards(t *testing.T) {
	s := NewStore()
	parent := s.Begin()
	if err := parent.Add("ctr", 1); err != nil {
		t.Fatal(err)
	}
	child, err := parent.BeginChild()
	if err != nil {
		t.Fatal(err)
	}
	if err := child.Add("ctr", 100); err != nil {
		t.Fatal(err)
	}
	if err := child.Abort(); err != nil {
		t.Fatal(err)
	}
	if err := parent.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := s.Snapshot()["ctr"]; got != 1 {
		t.Errorf("ctr = %v, want 1", got)
	}
}

// TestDrainOlderReaderWaits: an older transaction's ReadWrite access to an
// object with a younger transaction's pending deltas blocks until the log
// drains, then sees the merged value.
func TestDrainOlderReaderWaits(t *testing.T) {
	s := NewStore()
	older := s.Begin()
	younger := s.Begin()
	if err := younger.Add("ctr", 4); err != nil {
		t.Fatal(err)
	}
	got := make(chan any, 1)
	go func() {
		v, err := older.Read("ctr")
		if err != nil {
			got <- err
			return
		}
		got <- v
	}()
	select {
	case v := <-got:
		t.Fatalf("older read should block on the pending delta, returned %v", v)
	case <-time.After(10 * time.Millisecond):
	}
	if err := younger.Commit(); err != nil {
		t.Fatal(err)
	}
	select {
	case v := <-got:
		if v != 4 {
			t.Fatalf("older read = %v, want 4", v)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("older reader was not woken by the log drain")
	}
	_ = older.Abort()
}

// TestDrainYoungerReaderDies: a younger ReadWrite access to an object with
// an older transaction's pending deltas dies under wait-die.
func TestDrainYoungerReaderDies(t *testing.T) {
	s := NewStore()
	older := s.Begin()
	younger := s.Begin()
	if err := older.Add("ctr", 4); err != nil {
		t.Fatal(err)
	}
	if _, err := younger.Read("ctr"); !errors.Is(err, ErrWaitDie) {
		t.Fatalf("younger read should die on the older delta, got %v", err)
	}
	_ = younger.Abort()
	if err := older.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestAddOnLockedObject: Adds against a foreign lock behave like any other
// access — younger dies, older waits for release and then appends.
func TestAddOnLockedObject(t *testing.T) {
	s := NewStore()
	older := s.Begin()
	younger := s.Begin()
	if err := older.Write("ctr", 10); err != nil {
		t.Fatal(err)
	}
	if err := younger.Add("ctr", 1); !errors.Is(err, ErrWaitDie) {
		t.Fatalf("younger add against a lock should die, got %v", err)
	}
	_ = younger.Abort()
	if err := older.Commit(); err != nil {
		t.Fatal(err)
	}

	// Older-waits: begin the waiter before the holder.
	done := make(chan error, 1)
	s2 := NewStore()
	w := s2.Begin()
	h := s2.Begin()
	if err := h.Write("ctr", 1); err != nil {
		t.Fatal(err)
	}
	go func() {
		done <- w.Add("ctr", 2)
	}()
	select {
	case err := <-done:
		t.Fatalf("older add should wait for the lock, returned %v", err)
	case <-time.After(10 * time.Millisecond):
	}
	if err := h.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("older add after release: %v", err)
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := s2.Snapshot()["ctr"]; got != 3 {
		t.Errorf("ctr = %v, want 3", got)
	}
}

func TestClassMismatch(t *testing.T) {
	s := NewStore()
	seed := s.Begin()
	if err := seed.Write("name", "alice"); err != nil {
		t.Fatal(err)
	}
	if err := seed.Commit(); err != nil {
		t.Fatal(err)
	}
	tx := s.Begin()
	if err := tx.Add("name", 1); !errors.Is(err, ErrClassMismatch) {
		t.Fatalf("Add on a string object: %v, want ErrClassMismatch", err)
	}
	if err := tx.Insert("name", "x"); !errors.Is(err, ErrClassMismatch) {
		t.Fatalf("Insert on a string object: %v, want ErrClassMismatch", err)
	}
	_ = tx.Abort()
}

// TestMixedClassFallsBackToLock: a transaction mixing two commuting classes
// on one key coordinates through the lock; the second class then fails the
// type check against the first class's materialised value.
func TestMixedClassFallsBackToLock(t *testing.T) {
	s := NewStore()
	tx := s.Begin()
	if err := tx.Add("k", 1); err != nil {
		t.Fatal(err)
	}
	if err := tx.Insert("k", "e"); !errors.Is(err, ErrClassMismatch) {
		t.Fatalf("Insert after Add on one key: %v, want ErrClassMismatch", err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := s.Snapshot()["k"]; got != 1 {
		t.Errorf("k = %v, want 1", got)
	}
}

func TestSetInsertMergesUnion(t *testing.T) {
	s := NewStore()
	var wg sync.WaitGroup
	for _, e := range []string{"a", "b", "c", "d"} {
		wg.Add(1)
		go func(e string) {
			defer wg.Done()
			tx := s.Begin()
			if err := tx.Insert("set", e); err != nil {
				t.Errorf("insert %q: %v", e, err)
				_ = tx.Abort()
				return
			}
			if err := tx.Commit(); err != nil {
				t.Errorf("commit %q: %v", e, err)
			}
		}(e)
	}
	wg.Wait()
	set, ok := s.Snapshot()["set"].(map[string]bool)
	if !ok || len(set) != 4 {
		t.Fatalf("set = %v, want union of 4 elements", s.Snapshot()["set"])
	}
	for _, e := range []string{"a", "b", "c", "d"} {
		if !set[e] {
			t.Errorf("set missing %q", e)
		}
	}
}

func TestSetInsertAbortDiscards(t *testing.T) {
	s := NewStore()
	seed := s.Begin()
	if err := seed.Insert("set", "keep"); err != nil {
		t.Fatal(err)
	}
	if err := seed.Commit(); err != nil {
		t.Fatal(err)
	}
	tx := s.Begin()
	if err := tx.Insert("set", "drop"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	set, _ := s.Snapshot()["set"].(map[string]bool)
	if !set["keep"] || set["drop"] {
		t.Errorf("set = %v, want {keep}", set)
	}
}

func TestUpdateOpRoutesThroughLock(t *testing.T) {
	s := NewStore()
	seed := s.Begin()
	if err := seed.Write("k", 10); err != nil {
		t.Fatal(err)
	}
	if err := seed.Commit(); err != nil {
		t.Fatal(err)
	}
	tx := s.Begin()
	op := UpdateOp(func(v any) (any, error) { return v.(int) * 2, nil })
	if op.Class() != ReadWrite {
		t.Errorf("UpdateOp class = %v", op.Class())
	}
	if err := tx.Apply("k", op); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := s.Snapshot()["k"]; got != 20 {
		t.Errorf("k = %v, want 20", got)
	}
	if err := s.Begin().Apply("k", Op{}); err == nil {
		t.Error("zero ReadWrite op without update function must error")
	}
}

func TestWriteThenAddInPlace(t *testing.T) {
	s := NewStore()
	tx := s.Begin()
	if err := tx.Write("k", 5); err != nil {
		t.Fatal(err)
	}
	if err := tx.Add("k", 3); err != nil {
		t.Fatal(err)
	}
	v, err := tx.Read("k")
	if err != nil || v != 8 {
		t.Fatalf("read = %v, %v; want 8", v, err)
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Snapshot()["k"]; ok {
		t.Error("aborted in-place add left the object behind")
	}
}

// TestSnapshotSkipsUncommitted: the satellite fix — Snapshot promises
// committed values, so in-flight writes and pending deltas stay invisible.
func TestSnapshotSkipsUncommitted(t *testing.T) {
	s := NewStore()
	seed := s.Begin()
	if err := seed.Write("a", 1); err != nil {
		t.Fatal(err)
	}
	if err := seed.Commit(); err != nil {
		t.Fatal(err)
	}

	writer := s.Begin()
	if err := writer.Write("a", 999); err != nil {
		t.Fatal(err)
	}
	if err := writer.Write("b", 2); err != nil {
		t.Fatal(err)
	}
	adder := s.Begin()
	if err := adder.Add("c", 3); err != nil {
		t.Fatal(err)
	}

	snap := s.Snapshot()
	if _, ok := snap["a"]; ok {
		t.Errorf("a = %v: uncommitted overwrite must hide the object", snap["a"])
	}
	if _, ok := snap["b"]; ok {
		t.Error("b: uncommitted creation leaked into Snapshot")
	}
	if _, ok := snap["c"]; ok {
		t.Error("c: pending delta leaked into Snapshot")
	}

	if err := writer.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := adder.Commit(); err != nil {
		t.Fatal(err)
	}
	snap = s.Snapshot()
	if snap["a"] != 999 || snap["b"] != 2 || snap["c"] != 3 {
		t.Errorf("after commits snapshot = %v", snap)
	}
}

// TestFastPathProperty: random interleavings of Add/commit/abort across many
// transactions; the final counter must equal the sum of committed deltas.
func TestFastPathProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewStore()
		want := map[string]int{}
		open := []*Txn{}
		openSum := []map[string]int{}
		for step := 0; step < 60; step++ {
			switch {
			case len(open) == 0 || rng.Intn(3) == 0:
				open = append(open, s.Begin())
				openSum = append(openSum, map[string]int{})
			case rng.Intn(2) == 0:
				i := rng.Intn(len(open))
				key := fmt.Sprintf("k%d", rng.Intn(3))
				d := 1 + rng.Intn(9)
				if err := open[i].Add(key, d); err != nil {
					return false
				}
				openSum[i][key] += d
			default:
				i := rng.Intn(len(open))
				if rng.Intn(2) == 0 {
					if err := open[i].Commit(); err != nil {
						return false
					}
					for k, v := range openSum[i] {
						want[k] += v
					}
				} else if err := open[i].Abort(); err != nil {
					return false
				}
				open = append(open[:i], open[i+1:]...)
				openSum = append(openSum[:i], openSum[i+1:]...)
			}
		}
		for i, tx := range open {
			if err := tx.Commit(); err != nil {
				return false
			}
			for k, v := range openSum[i] {
				want[k] += v
			}
		}
		snap := s.Snapshot()
		for k, v := range want {
			got, _ := snap[k].(int)
			if got != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
