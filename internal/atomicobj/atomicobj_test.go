package atomicobj

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestReadMissing(t *testing.T) {
	s := NewStore()
	tx := s.Begin()
	if _, err := tx.Read("nope"); !errors.Is(err, ErrNoSuchObject) {
		t.Fatalf("want ErrNoSuchObject, got %v", err)
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
}

func TestWriteReadCommit(t *testing.T) {
	s := NewStore()
	tx := s.Begin()
	if err := tx.Write("a", 1); err != nil {
		t.Fatal(err)
	}
	v, err := tx.Read("a")
	if err != nil || v.(int) != 1 {
		t.Fatalf("read = %v, %v", v, err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := s.Snapshot()["a"]; got.(int) != 1 {
		t.Errorf("snapshot a = %v", got)
	}
	if tx.State() != TxnCommitted {
		t.Errorf("state = %v", tx.State())
	}
}

func TestAbortRestores(t *testing.T) {
	s := NewStore()
	setup := s.Begin()
	if err := setup.Write("a", 10); err != nil {
		t.Fatal(err)
	}
	if err := setup.Commit(); err != nil {
		t.Fatal(err)
	}

	tx := s.Begin()
	if err := tx.Write("a", 99); err != nil {
		t.Fatal(err)
	}
	if err := tx.Write("b", 1); err != nil {
		t.Fatal(err)
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	snap := s.Snapshot()
	if snap["a"].(int) != 10 {
		t.Errorf("a = %v, want 10", snap["a"])
	}
	if _, ok := snap["b"]; ok {
		t.Error("b should not exist after abort")
	}
	if tx.State() != TxnAborted {
		t.Errorf("state = %v", tx.State())
	}
}

func TestOperationsAfterFinish(t *testing.T) {
	s := NewStore()
	tx := s.Begin()
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := tx.Write("a", 1); !errors.Is(err, ErrTxnDone) {
		t.Errorf("Write after commit: %v", err)
	}
	if _, err := tx.Read("a"); !errors.Is(err, ErrTxnDone) {
		t.Errorf("Read after commit: %v", err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrTxnDone) {
		t.Errorf("double Commit: %v", err)
	}
	if err := tx.Abort(); !errors.Is(err, ErrTxnDone) {
		t.Errorf("Abort after commit: %v", err)
	}
	if _, err := tx.BeginChild(); !errors.Is(err, ErrTxnDone) {
		t.Errorf("BeginChild after commit: %v", err)
	}
}

func TestNestedCommitIntoParent(t *testing.T) {
	s := NewStore()
	parent := s.Begin()
	if err := parent.Write("a", 1); err != nil {
		t.Fatal(err)
	}
	child, err := parent.BeginChild()
	if err != nil {
		t.Fatal(err)
	}
	if err := child.Write("a", 2); err != nil {
		t.Fatal(err)
	}
	if err := child.Write("b", 3); err != nil {
		t.Fatal(err)
	}
	if err := child.Commit(); err != nil {
		t.Fatal(err)
	}
	// Parent sees child's writes.
	v, err := parent.Read("a")
	if err != nil || v.(int) != 2 {
		t.Fatalf("parent read a = %v, %v", v, err)
	}
	// Parent abort undoes both its own and the absorbed child writes.
	if err := parent.Abort(); err != nil {
		t.Fatal(err)
	}
	snap := s.Snapshot()
	if _, ok := snap["a"]; ok {
		t.Errorf("a should be gone after parent abort, got %v", snap["a"])
	}
	if _, ok := snap["b"]; ok {
		t.Error("b should be gone after parent abort")
	}
}

func TestNestedAbortKeepsParentState(t *testing.T) {
	s := NewStore()
	parent := s.Begin()
	if err := parent.Write("a", 1); err != nil {
		t.Fatal(err)
	}
	child, err := parent.BeginChild()
	if err != nil {
		t.Fatal(err)
	}
	if err := child.Write("a", 2); err != nil {
		t.Fatal(err)
	}
	if err := child.Abort(); err != nil {
		t.Fatal(err)
	}
	v, err := parent.Read("a")
	if err != nil || v.(int) != 1 {
		t.Fatalf("parent read a = %v, %v; want 1", v, err)
	}
	if err := parent.Commit(); err != nil {
		t.Fatal(err)
	}
	if s.Snapshot()["a"].(int) != 1 {
		t.Error("committed value wrong")
	}
}

func TestParentCannotCommitWithActiveChild(t *testing.T) {
	s := NewStore()
	parent := s.Begin()
	child, err := parent.BeginChild()
	if err != nil {
		t.Fatal(err)
	}
	if err := parent.Commit(); !errors.Is(err, ErrActiveChildren) {
		t.Errorf("Commit with active child: %v", err)
	}
	if err := child.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := parent.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestAbortCascadesIntoLiveChildren: aborting an outer transaction aborts
// its live nested transactions first — the atomic-object face of "aborting a
// CA action aborts the actions nested within it", in any abort order.
func TestAbortCascadesIntoLiveChildren(t *testing.T) {
	s := NewStore()
	parent := s.Begin()
	if err := parent.Write("a", 1); err != nil {
		t.Fatal(err)
	}
	child, err := parent.BeginChild()
	if err != nil {
		t.Fatal(err)
	}
	grand, err := child.BeginChild()
	if err != nil {
		t.Fatal(err)
	}
	if err := grand.Write("b", 2); err != nil {
		t.Fatal(err)
	}
	if err := child.Write("c", 3); err != nil {
		t.Fatal(err)
	}
	if err := parent.Abort(); err != nil {
		t.Fatalf("cascading abort: %v", err)
	}
	if grand.State() != TxnAborted || child.State() != TxnAborted || parent.State() != TxnAborted {
		t.Errorf("states = %v %v %v", parent.State(), child.State(), grand.State())
	}
	snap := s.Snapshot()
	if len(snap) != 0 {
		t.Errorf("store = %v, want empty", snap)
	}
	// Aborting the already-aborted child reports ErrTxnDone.
	if err := child.Abort(); !errors.Is(err, ErrTxnDone) {
		t.Errorf("child re-abort: %v", err)
	}
}

func TestChildMayUseAncestorLock(t *testing.T) {
	s := NewStore()
	parent := s.Begin()
	if err := parent.Write("a", 1); err != nil {
		t.Fatal(err)
	}
	child, err := parent.BeginChild()
	if err != nil {
		t.Fatal(err)
	}
	if err := child.Write("a", 2); err != nil {
		t.Fatalf("child should write under ancestor lock: %v", err)
	}
	if err := child.Abort(); err != nil {
		t.Fatal(err)
	}
	v, _ := parent.Read("a")
	if v.(int) != 1 {
		t.Errorf("child abort should restore parent's value, got %v", v)
	}
	if err := parent.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestWaitDieYoungerRefused(t *testing.T) {
	s := NewStore()
	older := s.Begin()
	younger := s.Begin()
	if err := older.Write("a", 1); err != nil {
		t.Fatal(err)
	}
	if err := younger.Write("a", 2); !errors.Is(err, ErrWaitDie) {
		t.Fatalf("younger should die, got %v", err)
	}
	if err := younger.Abort(); err != nil {
		t.Fatal(err)
	}
	if err := older.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestWaitDieOlderWaits(t *testing.T) {
	s := NewStore()
	older := s.Begin()
	younger := s.Begin()
	if err := younger.Write("a", 2); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		// Older blocks until younger commits.
		done <- older.Write("a", 1)
	}()
	if err := younger.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("older write after younger commit: %v", err)
	}
	v, _ := older.Read("a")
	if v.(int) != 1 {
		t.Errorf("a = %v, want 1", v)
	}
	if err := older.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestIsolationBetweenTopLevelTxns(t *testing.T) {
	s := NewStore()
	t1 := s.Begin()
	if err := t1.Write("a", 1); err != nil {
		t.Fatal(err)
	}
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}

	t2 := s.Begin()
	t3 := s.Begin()
	if err := t2.Write("a", 2); err != nil {
		t.Fatal(err)
	}
	// t3 is younger; it must not see or touch a while t2 holds it.
	if _, err := t3.Read("a"); !errors.Is(err, ErrWaitDie) {
		t.Fatalf("t3 read should die, got %v", err)
	}
	if err := t2.Abort(); err != nil {
		t.Fatal(err)
	}
	v, err := t3.Read("a")
	if err != nil || v.(int) != 1 {
		t.Fatalf("t3 read after t2 abort = %v, %v; want 1", v, err)
	}
	if err := t3.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestSerializabilityCounters runs concurrent increment transactions with
// retry-on-die and checks the final counter equals the number of successful
// commits — the classic lost-update test.
func TestSerializabilityCounters(t *testing.T) {
	s := NewStore()
	init := s.Begin()
	if err := init.Write("ctr", 0); err != nil {
		t.Fatal(err)
	}
	if err := init.Commit(); err != nil {
		t.Fatal(err)
	}

	const workers = 8
	const perWorker = 50
	var wg sync.WaitGroup
	var commitCount sync.Map
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			commits := 0
			for i := 0; i < perWorker; i++ {
				for {
					tx := s.Begin()
					err := tx.Update("ctr", func(v any) (any, error) {
						return v.(int) + 1, nil
					})
					if err == nil {
						if err := tx.Commit(); err != nil {
							t.Errorf("commit: %v", err)
						}
						commits++
						break
					}
					if !errors.Is(err, ErrWaitDie) && !errors.Is(err, ErrTxnDone) {
						t.Errorf("unexpected error: %v", err)
						_ = tx.Abort()
						break
					}
					_ = tx.Abort()
				}
			}
			commitCount.Store(w, commits)
		}(w)
	}
	wg.Wait()
	total := 0
	commitCount.Range(func(_, v any) bool {
		total += v.(int)
		return true
	})
	got := s.Snapshot()["ctr"].(int)
	if got != total {
		t.Errorf("counter = %d, commits = %d (lost update)", got, total)
	}
	if total != workers*perWorker {
		t.Errorf("commits = %d, want %d", total, workers*perWorker)
	}
}

// TestAbortAlwaysRestoresProperty: for random write sequences, abort returns
// the store to its exact pre-transaction state.
func TestAbortAlwaysRestoresProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewStore()
		setup := s.Begin()
		for i := 0; i < 5; i++ {
			if err := setup.Write(fmt.Sprintf("k%d", i), rng.Intn(100)); err != nil {
				return false
			}
		}
		if err := setup.Commit(); err != nil {
			return false
		}
		before := s.Snapshot()

		tx := s.Begin()
		for i := 0; i < 20; i++ {
			key := fmt.Sprintf("k%d", rng.Intn(8)) // may create new keys
			if err := tx.Write(key, rng.Intn(100)); err != nil {
				return false
			}
		}
		if err := tx.Abort(); err != nil {
			return false
		}
		after := s.Snapshot()
		if len(before) != len(after) {
			return false
		}
		for k, v := range before {
			if after[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestNestedLockTransferOnCommit(t *testing.T) {
	s := NewStore()
	parent := s.Begin()
	child, err := parent.BeginChild()
	if err != nil {
		t.Fatal(err)
	}
	if err := child.Write("a", 1); err != nil {
		t.Fatal(err)
	}
	if err := child.Commit(); err != nil {
		t.Fatal(err)
	}
	// Another (younger) txn must still be excluded: lock now owned by parent.
	other := s.Begin()
	if _, err := other.Read("a"); !errors.Is(err, ErrWaitDie) {
		t.Fatalf("lock should have transferred to parent, got %v", err)
	}
	_ = other.Abort()
	if err := parent.Commit(); err != nil {
		t.Fatal(err)
	}
	// Now free.
	last := s.Begin()
	if v, err := last.Read("a"); err != nil || v.(int) != 1 {
		t.Fatalf("read after release = %v, %v", v, err)
	}
	_ = last.Commit()
}

func TestTxnStateString(t *testing.T) {
	if TxnActive.String() != "active" || TxnCommitted.String() != "committed" ||
		TxnAborted.String() != "aborted" {
		t.Error("state strings wrong")
	}
	if TxnState(9).String() != "state(9)" {
		t.Error("unknown state string wrong")
	}
	s := NewStore()
	tx := s.Begin()
	if tx.ID() == 0 {
		t.Error("ID should be non-zero")
	}
	_ = tx.Abort()
}

func TestUpdateErrorPropagates(t *testing.T) {
	s := NewStore()
	tx := s.Begin()
	if err := tx.Write("a", 1); err != nil {
		t.Fatal(err)
	}
	wantErr := errors.New("boom")
	if err := tx.Update("a", func(any) (any, error) { return nil, wantErr }); !errors.Is(err, wantErr) {
		t.Errorf("Update error = %v", err)
	}
	v, _ := tx.Read("a")
	if v.(int) != 1 {
		t.Errorf("failed update must not write, got %v", v)
	}
	_ = tx.Abort()
}
