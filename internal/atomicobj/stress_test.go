package atomicobj

import (
	"errors"
	"runtime"
	"sync"
	"testing"
)

// TestStressMixedWorkload hammers a tiny key set from many goroutines with
// a mix of fast-path Adds and locking Reads/Updates, retrying on wait-die.
// Run under -race it proves the sharded wait lists lose no wakeups; the
// final waiterCount check proves no waiter leaks; the exact sums prove the
// delta logs and undo logs never double- or under-apply.
func TestStressMixedWorkload(t *testing.T) {
	s := NewStore()
	const (
		workers   = 16
		perWorker = 60
		keys      = 3
	)
	keyName := [keys]string{"k0", "k1", "k2"}

	// Per-key totals each worker managed to commit, tallied locally and
	// compared against the store at the end.
	var mu sync.Mutex
	want := map[string]int{}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			local := map[string]int{}
			for i := 0; i < perWorker; i++ {
				key := keyName[(w+i)%keys]
				delta := 1 + (i % 5)
				for {
					tx := s.Begin()
					var err error
					switch i % 3 {
					case 0: // fast path
						err = tx.Add(key, delta)
					case 1: // classic locking update
						err = tx.Update(key, func(v any) (any, error) {
							n, _ := v.(int)
							return n + delta, nil
						})
						if errors.Is(err, ErrNoSuchObject) {
							err = tx.Write(key, delta)
						}
					default: // read + write through the lock
						var v any
						v, err = tx.Read(key)
						if err == nil {
							n, _ := v.(int)
							err = tx.Write(key, n+delta)
						} else if errors.Is(err, ErrNoSuchObject) {
							err = tx.Write(key, delta)
						}
					}
					if err == nil {
						err = tx.Commit()
						if err == nil {
							local[key] += delta
							break
						}
					} else {
						_ = tx.Abort()
					}
					if !errors.Is(err, ErrWaitDie) {
						t.Errorf("worker %d: %v", w, err)
						return
					}
					runtime.Gosched()
				}
			}
			mu.Lock()
			for k, v := range local {
				want[k] += v
			}
			mu.Unlock()
		}(w)
	}
	wg.Wait()

	snap := s.Snapshot()
	for k, v := range want {
		got, _ := snap[k].(int)
		if got != v {
			t.Errorf("%s = %d, want %d", k, got, v)
		}
	}
	if n := s.waiterCount(); n != 0 {
		t.Errorf("leaked waiters: %d parked after all transactions finished", n)
	}
}

// TestStressFastPathOnly: pure commuting workload — no retry loop needed
// because the fast path must never die against itself.
func TestStressFastPathOnly(t *testing.T) {
	s := NewStore()
	const (
		workers   = 24
		perWorker = 100
	)
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				tx := s.Begin()
				if err := tx.Add("hot", 1); err != nil {
					errCh <- err
					_ = tx.Abort()
					return
				}
				if i%7 == 0 {
					if err := tx.Abort(); err != nil {
						errCh <- err
						return
					}
					// Re-do the increment so the expected sum stays exact.
					tx = s.Begin()
					if err := tx.Add("hot", 1); err != nil {
						errCh <- err
						_ = tx.Abort()
						return
					}
				}
				if err := tx.Commit(); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatalf("fast path died under pure commuting load: %v", err)
	}
	if got := s.Snapshot()["hot"]; got != workers*perWorker {
		t.Errorf("hot = %v, want %d", got, workers*perWorker)
	}
	if n := s.waiterCount(); n != 0 {
		t.Errorf("leaked waiters: %d", n)
	}
}
