// The commutativity fast path. Two companion papers motivate it
// (PAPERS.md): *Path-Sensitive Atomic Commit* (Soethout et al.) commits
// concurrent operations without coordination when their effect paths
// commute, and *Automating Fine Concurrency Control in Object-Oriented
// Databases* (Malta & Martinez) derives finer-than-object lock modes from
// method semantics. Here an operation declares its commutativity class; as
// long as every concurrent access to an object stays in one class, the
// operations append to a per-object delta log under the shard latch — no
// lock ownership, no waiting, no wait-die deaths — and fold into the
// committed value when their transaction commits (or vanish, exact-inverse,
// when it aborts). Non-commuting access must drain the log first: a lock
// acquisition waits for (or dies on, per wait-die) foreign records and
// materialises own-chain records into the value, so strict serializability
// is preserved. See docs/ATOMIC.md.

package atomicobj

import "fmt"

// Class is a commutativity class: operations of one class on one object
// commute with each other and may commit without 2PL coordination.
// Operations of distinct classes — including ReadWrite, the class of
// Read/Write/Update — do not commute and fall back to locking.
type Class uint8

// Commutativity classes.
const (
	// ReadWrite is the default class: arbitrary reads and writes, full 2PL.
	ReadWrite Class = iota
	// Increment adds a delta to an integer object; increments commute.
	Increment
	// SetInsert inserts elements into a set object (map[string]bool);
	// insertions commute.
	SetInsert
)

// String renders the class.
func (c Class) String() string {
	switch c {
	case ReadWrite:
		return "read-write"
	case Increment:
		return "increment"
	case SetInsert:
		return "set-insert"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// Op is one typed operation for Txn.Apply, declaring its commutativity
// class. Construct with AddOp, InsertOp or UpdateOp.
type Op struct {
	class  Class
	delta  int
	elem   string
	update func(any) (any, error)
}

// AddOp returns an Increment-class op adding delta to an integer object.
func AddOp(delta int) Op { return Op{class: Increment, delta: delta} }

// InsertOp returns a SetInsert-class op inserting elem into a set object.
func InsertOp(elem string) Op { return Op{class: SetInsert, elem: elem} }

// UpdateOp returns a ReadWrite-class op: f runs under the ordinary 2PL
// protocol, exactly like Txn.Update.
func UpdateOp(f func(any) (any, error)) Op { return Op{class: ReadWrite, update: f} }

// Class returns the op's commutativity class.
func (op Op) Class() Class { return op.class }

// pendingRec is one transaction's accumulated contribution to an object's
// delta log. Records coalesce per owner: a transaction holds at most one
// record per object.
type pendingRec struct {
	owner *Txn
	delta int      // Increment: accumulated delta
	elems []string // SetInsert: accumulated elements
}

// Add adds delta to the integer object at key on the commutativity fast
// path. The object is created at commit if it does not exist.
func (t *Txn) Add(key string, delta int) error {
	return t.Apply(key, AddOp(delta))
}

// Insert inserts elem into the set object at key on the fast path.
func (t *Txn) Insert(key, elem string) error {
	return t.Apply(key, InsertOp(elem))
}

// Apply applies a typed operation to key. Commuting classes take the fast
// path; the ReadWrite class routes through the ordinary 2PL Update.
func (t *Txn) Apply(key string, op Op) error {
	switch op.class {
	case ReadWrite:
		if op.update == nil {
			return fmt.Errorf("atomicobj: ReadWrite op for %q has no update function", key)
		}
		return t.Update(key, op.update)
	case Increment, SetInsert:
		return t.applyCommuting(key, op)
	default:
		return fmt.Errorf("atomicobj: unknown op class %d", int(op.class))
	}
}

// applyCommuting is the fast path: when nothing conflicting stands in the
// way, the op joins the object's delta log under the shard latch alone.
func (t *Txn) applyCommuting(key string, op Op) error {
	sh := t.store.shardFor(key)
	var parked *waiter
	var parkedOn *object
	for {
		if parked != nil {
			sh.mu.Lock()
			parkedOn.removeWaiter(parked)
			sh.mu.Unlock()
			parked, parkedOn = nil, nil
		}
		t.fam.mu.Lock()
		t.waiter = nil
		if t.state != TxnActive {
			t.fam.mu.Unlock()
			return ErrTxnDone
		}
		sh.mu.Lock()
		o := sh.obj(key)
		holder := o.owner
		if holder == t || (holder != nil && t.hasAncestor(holder)) {
			// Inside our own lock the lock itself serialises access: apply
			// in place through the ordinary undo log, like a Write.
			err := t.applyInPlaceLocked(o, key, op)
			sh.mu.Unlock()
			t.fam.mu.Unlock()
			return err
		}
		if holder != nil {
			// A foreign lock means ReadWrite access is in flight, which
			// commutes with nothing: ordinary wait-die applies.
			if t.root < holder.root {
				parked, parkedOn = t.enqueueWaiterLocked(o), o
				sh.mu.Unlock()
				t.fam.mu.Unlock()
				<-parked.ch
				continue
			}
			holderID := holder.id
			sh.mu.Unlock()
			t.fam.mu.Unlock()
			return fmt.Errorf("%w: key %q held by txn %d", ErrWaitDie, key, holderID)
		}
		if len(o.pending) > 0 && o.pclass != op.class {
			// Two distinct commuting classes do not commute with each
			// other: fall back to coordination, which drains the log.
			sh.mu.Unlock()
			t.fam.mu.Unlock()
			return t.applyViaLock(key, op)
		}
		if o.exists && !classMatches(op.class, o.value) {
			sh.mu.Unlock()
			t.fam.mu.Unlock()
			return fmt.Errorf("%w: key %q holds %T, want a %s object", ErrClassMismatch, key, o.value, op.class)
		}
		if r, ok := oldestWaiterRoot(o.waiters); ok && r < t.root {
			// An older transaction is parked on this object (waiting for
			// the log to drain); younger appends die instead of starving
			// it — the wait-die asymmetry, applied to the log.
			sh.mu.Unlock()
			t.fam.mu.Unlock()
			return fmt.Errorf("%w: key %q awaited by older txn root %d", ErrWaitDie, key, r)
		}
		if !coalesceOwned(o.pending, t, op) {
			if len(o.pending) == 0 {
				o.pclass = op.class
			}
			rec := pendingRec{owner: t, delta: op.delta}
			if op.class == SetInsert {
				rec.elems = []string{op.elem}
			}
			o.pending = append(o.pending, rec)
			t.pendingKeys = append(t.pendingKeys, key)
		}
		sh.mu.Unlock()
		t.fam.mu.Unlock()
		return nil
	}
}

// applyViaLock applies a commuting op through full lock acquisition — the
// fallback when the object's log holds a different class.
func (t *Txn) applyViaLock(key string, op Op) error {
	sh, o, err := t.acquire(key)
	if err != nil {
		return err
	}
	err = t.applyInPlaceLocked(o, key, op)
	sh.mu.Unlock()
	t.fam.mu.Unlock()
	return err
}

// applyInPlaceLocked applies a commuting op to an object t already holds
// (directly or via an ancestor), through the ordinary undo log. Caller holds
// fam.mu and the object's shard mutex.
func (t *Txn) applyInPlaceLocked(o *object, key string, op Op) error {
	if o.exists && !classMatches(op.class, o.value) {
		return fmt.Errorf("%w: key %q holds %T, want a %s object", ErrClassMismatch, key, o.value, op.class)
	}
	t.undo = append(t.undo, undoRec{key: key, prev: o.value, existed: o.exists})
	if op.class == SetInsert {
		set := make(map[string]bool)
		if o.exists {
			old, _ := o.value.(map[string]bool)
			for k, v := range old {
				set[k] = v
			}
		}
		set[op.elem] = true
		o.value = set
	} else {
		n := 0
		if o.exists {
			n, _ = o.value.(int)
		}
		o.value = n + op.delta
	}
	o.exists = true
	o.dirty = true
	return nil
}

// classMatches reports whether a committed value can absorb ops of class c.
func classMatches(c Class, value any) bool {
	switch c {
	case Increment:
		_, ok := value.(int)
		return ok
	case SetInsert:
		_, ok := value.(map[string]bool)
		return ok
	default:
		return true
	}
}

// foreignPending reports whether o's delta log holds records owned outside
// t's ancestor chain, and the smallest owning root among them (the wait-die
// comparison point). Caller holds the object's shard mutex.
func (o *object) foreignPending(t *Txn) (int64, bool) {
	var min int64
	found := false
	for i := range o.pending {
		own := o.pending[i].owner
		if own == t || t.hasAncestor(own) {
			continue
		}
		if !found || own.root < min {
			min = own.root
			found = true
		}
	}
	return min, found
}

// oldestWaiterRoot returns the smallest root among the parked waiters.
//
//caa:noalloc
func oldestWaiterRoot(ws []*waiter) (int64, bool) {
	var min int64
	found := false
	for _, w := range ws {
		if !found || w.root < min {
			min = w.root
			found = true
		}
	}
	return min, found
}

// coalesceOwned folds op into an existing record owned by t, so a
// transaction hammering one counter keeps a single record — the apply hot
// loop of the fast path.
//
//caa:noalloc
func coalesceOwned(pending []pendingRec, t *Txn, op Op) bool {
	for i := range pending {
		if pending[i].owner != t {
			continue
		}
		if op.class == SetInsert {
			pending[i].elems = append(pending[i].elems, op.elem)
		} else {
			pending[i].delta += op.delta
		}
		return true
	}
	return false
}

// materializeLocked folds the object's (entirely own-chain) delta log into
// its value under the freshly taken lock, recording an undo entry that can
// restore both the value and the records of owners that outlive an abort of
// t. Caller holds fam.mu and the shard mutex; foreign records must already
// be drained.
func (t *Txn) materializeLocked(o *object, key string) {
	if len(o.pending) == 0 {
		return
	}
	t.undo = append(t.undo, undoRec{key: key, prev: o.value, existed: o.exists,
		repend: o.pending, rependClass: o.pclass})
	o.value = applyRecs(o.value, o.exists, o.pclass, o.pending)
	o.exists = true
	o.dirty = true
	o.pending = nil
}

// applyRecs folds delta-log records into a value.
func applyRecs(value any, exists bool, class Class, recs []pendingRec) any {
	if class == SetInsert {
		set := make(map[string]bool)
		if exists {
			old, _ := value.(map[string]bool)
			for k, v := range old {
				set[k] = v
			}
		}
		for i := range recs {
			for _, e := range recs[i].elems {
				set[e] = true
			}
		}
		return set
	}
	n := 0
	if exists {
		n, _ = value.(int)
	}
	for i := range recs {
		n += recs[i].delta
	}
	return n
}

// flushPendingLocked folds every delta-log record owned by the committing
// top-level transaction into the committed values, waking waiters of
// objects whose log drains empty. Per-object folds are atomic under the
// shard mutex; cross-object ordering does not matter because a pending
// object is invisible (Snapshot skips it) until its own fold. Caller holds
// fam.mu.
func (t *Txn) flushPendingLocked() {
	for _, key := range t.pendingKeys {
		sh := t.store.shardFor(key)
		sh.mu.Lock()
		if o := sh.objects[key]; o != nil && len(o.pending) > 0 {
			o.mergeOwnedLocked(t)
			if len(o.pending) == 0 {
				o.wakeAllLocked()
			}
		}
		sh.mu.Unlock()
	}
	t.pendingKeys = nil
}

// mergeOwnedLocked folds t's records into o's committed value and compacts
// the log. Caller holds the shard mutex.
func (o *object) mergeOwnedLocked(t *Txn) {
	if o.pclass == SetInsert {
		var elems []string
		for i := range o.pending {
			if o.pending[i].owner == t {
				elems = append(elems, o.pending[i].elems...)
			}
		}
		if len(elems) > 0 {
			// Copy-on-write: committed maps handed out by Read/Snapshot are
			// never mutated in place.
			set := make(map[string]bool, len(elems))
			if o.exists {
				old, _ := o.value.(map[string]bool)
				for k, v := range old {
					set[k] = v
				}
			}
			for _, e := range elems {
				set[e] = true
			}
			o.value = set
			o.exists = true
		}
		o.pending = discardOwned(o.pending, t)
		return
	}
	base := 0
	if o.exists {
		base, _ = o.value.(int)
	}
	rest, val, merged := foldIncrements(o.pending, t, base)
	o.pending = rest
	if merged {
		o.value = val
		o.exists = true
	}
}

// foldIncrements folds every increment record owned by t into base and
// compacts the survivors to the front of the log in place — the commit hot
// loop of the fast path.
//
//caa:noalloc
func foldIncrements(pending []pendingRec, t *Txn, base int) ([]pendingRec, int, bool) {
	merged := false
	keep := pending[:0]
	for i := range pending {
		if pending[i].owner == t {
			base += pending[i].delta
			merged = true
		} else {
			keep = append(keep, pending[i])
		}
	}
	return keep, base, merged
}

// discardOwned drops every record owned by t from the log, in place — the
// abort path's exact inverse: unmerged deltas simply vanish.
//
//caa:noalloc
func discardOwned(pending []pendingRec, t *Txn) []pendingRec {
	keep := pending[:0]
	for i := range pending {
		if pending[i].owner != t {
			keep = append(keep, pending[i])
		}
	}
	return keep
}

// discardPendingLocked removes every delta-log record owned by the aborting
// transaction, waking waiters of objects whose log drains empty. Caller
// holds fam.mu.
func (t *Txn) discardPendingLocked() {
	for _, key := range t.pendingKeys {
		sh := t.store.shardFor(key)
		sh.mu.Lock()
		if o := sh.objects[key]; o != nil && len(o.pending) > 0 {
			o.pending = discardOwned(o.pending, t)
			if len(o.pending) == 0 {
				o.wakeAllLocked()
			}
		}
		sh.mu.Unlock()
	}
	t.pendingKeys = nil
}

// rependLocked pushes the delta-log records consumed by an undone
// materialisation back onto the object — minus those owned by the aborting
// transaction itself, whose deltas vanish with it. Caller holds fam.mu and
// the object's shard mutex.
func rependLocked(o *object, rec *undoRec, aborter *Txn) {
	for i := range rec.repend {
		if rec.repend[i].owner == aborter {
			continue
		}
		if len(o.pending) == 0 {
			o.pclass = rec.rependClass
		}
		o.pending = append(o.pending, rec.repend[i])
	}
}

// reownPending reassigns from's delta-log records to to — nested commit
// absorbing the child's contributions.
//
//caa:noalloc
func reownPending(recs []pendingRec, from, to *Txn) {
	for i := range recs {
		if recs[i].owner == from {
			recs[i].owner = to
		}
	}
}
