package atomicobj

import (
	"fmt"
	"testing"
)

func BenchmarkWriteCommit(b *testing.B) {
	s := NewStore()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tx := s.Begin()
		if err := tx.Write("key", i); err != nil {
			b.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWriteAbort(b *testing.B) {
	s := NewStore()
	seed := s.Begin()
	if err := seed.Write("key", 0); err != nil {
		b.Fatal(err)
	}
	if err := seed.Commit(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx := s.Begin()
		if err := tx.Write("key", i); err != nil {
			b.Fatal(err)
		}
		if err := tx.Abort(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNestedCommitChain(b *testing.B) {
	for _, depth := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			s := NewStore()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				txns := make([]*Txn, 0, depth+1)
				txns = append(txns, s.Begin())
				for d := 0; d < depth; d++ {
					child, err := txns[len(txns)-1].BeginChild()
					if err != nil {
						b.Fatal(err)
					}
					txns = append(txns, child)
				}
				if err := txns[len(txns)-1].Write("key", i); err != nil {
					b.Fatal(err)
				}
				for j := len(txns) - 1; j >= 0; j-- {
					if err := txns[j].Commit(); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

func BenchmarkAddCommit(b *testing.B) {
	s := NewStore()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tx := s.Begin()
		if err := tx.Add("ctr", 1); err != nil {
			b.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkContentionFastPath is the commuting twin of
// BenchmarkContentionRetry: same hot counter, but increments ride the
// pending-delta log, so no transaction ever aborts or retries.
func BenchmarkContentionFastPath(b *testing.B) {
	s := NewStore()
	seed := s.Begin()
	if err := seed.Write("ctr", 0); err != nil {
		b.Fatal(err)
	}
	if err := seed.Commit(); err != nil {
		b.Fatal(err)
	}
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			tx := s.Begin()
			if err := tx.Add("ctr", 1); err != nil {
				b.Error(err)
				_ = tx.Abort()
				continue
			}
			if err := tx.Commit(); err != nil {
				b.Error(err)
			}
		}
	})
}

func BenchmarkContentionRetry(b *testing.B) {
	s := NewStore()
	seed := s.Begin()
	if err := seed.Write("ctr", 0); err != nil {
		b.Fatal(err)
	}
	if err := seed.Commit(); err != nil {
		b.Fatal(err)
	}
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			for {
				tx := s.Begin()
				err := tx.Update("ctr", func(v any) (any, error) { return v.(int) + 1, nil })
				if err == nil {
					if err := tx.Commit(); err != nil {
						b.Error(err)
					}
					break
				}
				_ = tx.Abort()
			}
		}
	})
}
