// Package atomicobj implements the paper's external atomic objects (§3):
// "objects that are external to the CA action and can be shared with other
// actions and objects concurrently must be atomic and individually
// responsible for their own integrity". It provides a transactional in-memory
// object store with strict two-phase locking, explicit start/commit/abort
// (the three functions the paper lets exception handlers call, Fig. 2a) and
// nested transactions whose effects and locks are absorbed by the parent on
// commit, matching nested CA actions having "all properties of a nested
// transaction in the terms of atomic objects".
//
// Deadlocks between competing actions are avoided with the wait-die rule:
// an older transaction waits for a younger lock holder, a younger one is
// refused immediately (ErrWaitDie) and is expected to abort and retry.
package atomicobj

import (
	"errors"
	"fmt"
	"sync"
)

// Errors returned by the store and transactions.
var (
	// ErrNoSuchObject is returned by Read for a key never written.
	ErrNoSuchObject = errors.New("atomicobj: no such object")
	// ErrTxnDone is returned when operating on a committed or aborted txn.
	ErrTxnDone = errors.New("atomicobj: transaction already finished")
	// ErrWaitDie is returned when a younger transaction requests a lock held
	// by an older one; the caller should abort and retry.
	ErrWaitDie = errors.New("atomicobj: lock refused (wait-die), abort and retry")
	// ErrActiveChildren is returned by Commit on a txn with live children
	// (Abort instead cascades into them).
	ErrActiveChildren = errors.New("atomicobj: transaction has active children")
)

// TxnState is the lifecycle state of a transaction.
type TxnState int

// Transaction states.
const (
	TxnActive TxnState = iota + 1
	TxnCommitted
	TxnAborted
)

// String renders the state.
func (s TxnState) String() string {
	switch s {
	case TxnActive:
		return "active"
	case TxnCommitted:
		return "committed"
	case TxnAborted:
		return "aborted"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

type object struct {
	value  any
	exists bool
	owner  *Txn // topmost lock acquirer; nil when free
}

// Store is a transactional object store. The zero value is not usable;
// construct with NewStore.
type Store struct {
	mu      sync.Mutex
	cond    *sync.Cond
	objects map[string]*object
	nextID  int64
}

// NewStore returns an empty store.
func NewStore() *Store {
	s := &Store{objects: make(map[string]*object)}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// Begin starts a new top-level transaction.
func (s *Store) Begin() *Txn {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	return &Txn{store: s, id: s.nextID, root: s.nextID, state: TxnActive}
}

// Snapshot returns a copy of the committed values of all existing objects.
// Intended for tests and examples; it does not acquire locks and therefore
// observes whatever the current (possibly uncommitted) state is.
func (s *Store) Snapshot() map[string]any {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]any, len(s.objects))
	for k, o := range s.objects {
		if o.exists {
			out[k] = o.value
		}
	}
	return out
}

type undoRec struct {
	key     string
	prev    any
	existed bool
}

// Txn is a (possibly nested) transaction. All methods are safe for use from
// a single goroutine; a transaction must not be shared between goroutines.
type Txn struct {
	store    *Store
	id       int64
	root     int64 // root ancestor's id, used for wait-die priority
	parent   *Txn
	state    TxnState
	undo     []undoRec
	acquired []string // keys this txn newly locked
	children []*Txn   // live (active) child transactions
}

// ID returns the transaction's unique identifier.
func (t *Txn) ID() int64 { return t.id }

// State returns the lifecycle state.
func (t *Txn) State() TxnState {
	t.store.mu.Lock()
	defer t.store.mu.Unlock()
	return t.state
}

// BeginChild starts a nested transaction. The child's effects become the
// parent's on commit and vanish on abort.
func (t *Txn) BeginChild() (*Txn, error) {
	s := t.store
	s.mu.Lock()
	defer s.mu.Unlock()
	if t.state != TxnActive {
		return nil, ErrTxnDone
	}
	s.nextID++
	child := &Txn{store: s, id: s.nextID, root: t.root, parent: t, state: TxnActive}
	t.children = append(t.children, child)
	return child, nil
}

// dropChildLocked removes a finished child from t's live list.
func (t *Txn) dropChildLocked(child *Txn) {
	for i, c := range t.children {
		if c == child {
			t.children = append(t.children[:i], t.children[i+1:]...)
			return
		}
	}
}

// Read returns the current value of key, acquiring its lock (reads lock
// exclusively: the store provides strict isolation, not read sharing).
func (t *Txn) Read(key string) (any, error) {
	s := t.store
	s.mu.Lock()
	defer s.mu.Unlock()
	if t.state != TxnActive {
		return nil, ErrTxnDone
	}
	o, err := t.lockLocked(key)
	if err != nil {
		return nil, err
	}
	if !o.exists {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchObject, key)
	}
	return o.value, nil
}

// Write sets key to value, creating the object if necessary.
func (t *Txn) Write(key string, value any) error {
	s := t.store
	s.mu.Lock()
	defer s.mu.Unlock()
	if t.state != TxnActive {
		return ErrTxnDone
	}
	o, err := t.lockLocked(key)
	if err != nil {
		return err
	}
	t.undo = append(t.undo, undoRec{key: key, prev: o.value, existed: o.exists})
	o.value = value
	o.exists = true
	return nil
}

// Update applies f to the current value of key and writes the result back.
func (t *Txn) Update(key string, f func(any) (any, error)) error {
	v, err := t.Read(key)
	if err != nil {
		return err
	}
	nv, err := f(v)
	if err != nil {
		return err
	}
	return t.Write(key, nv)
}

// Commit finishes the transaction. For a nested transaction the undo log and
// lock ownership transfer to the parent; for a top-level transaction the
// effects become permanent and all locks are released.
func (t *Txn) Commit() error {
	s := t.store
	s.mu.Lock()
	defer s.mu.Unlock()
	if t.state != TxnActive {
		return ErrTxnDone
	}
	if len(t.children) > 0 {
		return ErrActiveChildren
	}
	t.state = TxnCommitted
	if t.parent != nil {
		p := t.parent
		p.dropChildLocked(t)
		p.undo = append(p.undo, t.undo...)
		for _, key := range t.acquired {
			if o := s.objects[key]; o != nil && o.owner == t {
				o.owner = p
				p.acquired = append(p.acquired, key)
			}
		}
		t.undo, t.acquired = nil, nil
		return nil
	}
	t.releaseLocked()
	t.undo = nil
	return nil
}

// Abort undoes every write made by this transaction (and by its committed
// children) and releases the locks it acquired. Live nested transactions are
// aborted first, innermost-first — aborting a CA action aborts everything
// running inside it.
func (t *Txn) Abort() error {
	s := t.store
	s.mu.Lock()
	defer s.mu.Unlock()
	if t.state != TxnActive {
		return ErrTxnDone
	}
	t.abortLocked()
	return nil
}

// abortLocked aborts t and, recursively, its live children. Caller holds
// store.mu.
func (t *Txn) abortLocked() {
	for len(t.children) > 0 {
		t.children[len(t.children)-1].abortLocked()
	}
	t.state = TxnAborted
	for i := len(t.undo) - 1; i >= 0; i-- {
		rec := t.undo[i]
		if o := t.store.objects[rec.key]; o != nil {
			o.value = rec.prev
			o.exists = rec.existed
		}
	}
	t.undo = nil
	if t.parent != nil {
		t.parent.dropChildLocked(t)
	}
	t.releaseLocked()
}

// lockLocked acquires key's lock for t (wait-die). Caller holds store.mu.
func (t *Txn) lockLocked(key string) (*object, error) {
	s := t.store
	o, ok := s.objects[key]
	if !ok {
		o = &object{}
		s.objects[key] = o
	}
	for {
		switch {
		case o.owner == nil:
			o.owner = t
			t.acquired = append(t.acquired, key)
			return o, nil
		case o.owner == t || t.hasAncestor(o.owner):
			return o, nil
		case t.root < o.owner.root:
			// Older transaction waits for the younger holder.
			s.cond.Wait()
			if t.state != TxnActive {
				return nil, ErrTxnDone
			}
		default:
			// Younger transaction dies rather than waits.
			return nil, fmt.Errorf("%w: key %q held by txn %d", ErrWaitDie, key, o.owner.id)
		}
	}
}

// hasAncestor reports whether a is an ancestor of t.
func (t *Txn) hasAncestor(a *Txn) bool {
	for cur := t.parent; cur != nil; cur = cur.parent {
		if cur == a {
			return true
		}
	}
	return false
}

// releaseLocked frees every lock acquired by t. Caller holds store.mu.
func (t *Txn) releaseLocked() {
	for _, key := range t.acquired {
		if o := t.store.objects[key]; o != nil && o.owner == t {
			o.owner = nil
		}
	}
	t.acquired = nil
	t.store.cond.Broadcast()
}
