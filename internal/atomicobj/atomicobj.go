// Package atomicobj implements the paper's external atomic objects (§3):
// "objects that are external to the CA action and can be shared with other
// actions and objects concurrently must be atomic and individually
// responsible for their own integrity". It provides a transactional in-memory
// object store with strict two-phase locking, explicit start/commit/abort
// (the three functions the paper lets exception handlers call, Fig. 2a) and
// nested transactions whose effects and locks are absorbed by the parent on
// commit, matching nested CA actions having "all properties of a nested
// transaction in the terms of atomic objects".
//
// Deadlocks between competing actions are avoided with the wait-die rule:
// an older transaction waits for a younger lock holder, a younger one is
// refused immediately (ErrWaitDie) and is expected to abort and retry.
//
// Two mechanisms keep coordination local instead of store-wide (see
// docs/ATOMIC.md):
//
//   - The store is hash-sharded: each object lives on one of shardCount
//     shards with its own mutex, and blocked transactions park on per-object
//     wait lists with targeted wakeups — independent objects never contend
//     on a common lock and a release never wakes strangers.
//
//   - Operations that declare a commutativity class (Txn.Add, Txn.Apply —
//     fastpath.go) skip 2PL entirely while every concurrent access to the
//     object stays in the same class: they append to a per-object delta log
//     under the shard latch and fold in at commit. Non-commuting access
//     drains the log first, preserving strict serializability.
package atomicobj

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// Errors returned by the store and transactions.
var (
	// ErrNoSuchObject is returned by Read for a key never written.
	ErrNoSuchObject = errors.New("atomicobj: no such object")
	// ErrTxnDone is returned when operating on a committed or aborted txn.
	ErrTxnDone = errors.New("atomicobj: transaction already finished")
	// ErrWaitDie is returned when a younger transaction requests a lock held
	// by an older one; the caller should abort and retry.
	ErrWaitDie = errors.New("atomicobj: lock refused (wait-die), abort and retry")
	// ErrActiveChildren is returned by Commit on a txn with live children
	// (Abort instead cascades into them).
	ErrActiveChildren = errors.New("atomicobj: transaction has active children")
	// ErrClassMismatch is returned by Apply when an operation's commutativity
	// class does not fit the object's committed value (e.g. an Increment
	// against a string object).
	ErrClassMismatch = errors.New("atomicobj: operation class does not fit the object's value")
)

// TxnState is the lifecycle state of a transaction.
type TxnState int

// Transaction states.
const (
	TxnActive TxnState = iota + 1
	TxnCommitted
	TxnAborted
)

// String renders the state.
func (s TxnState) String() string {
	switch s {
	case TxnActive:
		return "active"
	case TxnCommitted:
		return "committed"
	case TxnAborted:
		return "aborted"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// shardCount is the number of store shards; a power of two so shardFor can
// mask instead of mod.
const shardCount = 64

// shard is one hash shard of the store: a private mutex over a private
// object map. Transactions touching disjoint shards share no lock at all.
type shard struct {
	mu      sync.Mutex
	objects map[string]*object
	_       [40]byte // keep neighbouring shard mutexes off one cache line
}

// obj returns the shard's record for key, creating an empty (non-existing)
// one. Caller holds sh.mu.
func (sh *shard) obj(key string) *object {
	o, ok := sh.objects[key]
	if !ok {
		o = &object{}
		sh.objects[key] = o
	}
	return o
}

type object struct {
	value  any
	exists bool
	// dirty marks an uncommitted in-place write: the value must stay out of
	// Snapshot until the owning transaction's fate is decided. Cleared on
	// lock release (commit folds first, abort restores first).
	dirty bool
	owner *Txn // topmost lock acquirer; nil when free

	// pending is the commutativity fast path's delta log (fastpath.go):
	// same-class operations append here without taking the lock and fold
	// into the committed value when their transaction commits. All records
	// share the class pclass. Invariant: owner != nil implies pending is
	// empty — acquisition drains foreign records and materialises own-chain
	// ones into the value.
	pclass  Class
	pending []pendingRec

	// waiters are the transactions parked on this object, woken when the
	// lock is released or the delta log drains — targeted wakeups, never a
	// store-wide broadcast.
	waiters []*waiter
}

// waiter parks one transaction on one object. wake closes the channel
// exactly once; the object's releaser and the transaction's own abort may
// race to call it.
type waiter struct {
	ch   chan struct{}
	root int64
	once sync.Once
}

func (w *waiter) wake() { w.once.Do(func() { close(w.ch) }) }

// removeWaiter drops w from o's wait list if still present (a waiter woken
// by its own abort removes itself; releases clear the list wholesale).
// Caller holds the object's shard mutex.
func (o *object) removeWaiter(w *waiter) {
	for i, x := range o.waiters {
		if x == w {
			o.waiters = append(o.waiters[:i], o.waiters[i+1:]...)
			return
		}
	}
}

// wakeAllLocked wakes every transaction parked on o — only this object's
// waiters. Caller holds the object's shard mutex.
func (o *object) wakeAllLocked() {
	for _, w := range o.waiters {
		w.wake()
	}
	o.waiters = nil
}

// family is the mutex shared by a top-level transaction and all its nested
// descendants: one CA action's transaction tree is one unit of concurrent
// state (sibling nested transactions run on separate goroutines, and Abort
// and State are called across goroutines). Keeping it per-family instead of
// store-wide means independent actions share no coordination point.
type family struct {
	mu sync.Mutex
}

// Store is a transactional object store. The zero value is not usable;
// construct with NewStore.
type Store struct {
	nextID atomic.Int64
	shards [shardCount]shard
}

// NewStore returns an empty store.
func NewStore() *Store {
	s := &Store{}
	for i := range s.shards {
		s.shards[i].objects = make(map[string]*object)
	}
	return s
}

// shardFor hashes key onto its shard (FNV-1a).
//
//caa:noalloc
func (s *Store) shardFor(key string) *shard {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return &s.shards[h&(shardCount-1)]
}

// Begin starts a new top-level transaction. It touches no shared lock:
// transaction identity is an atomic counter and each top-level transaction
// brings its own family mutex.
func (s *Store) Begin() *Txn {
	id := s.nextID.Add(1)
	return &Txn{store: s, id: id, root: id, fam: &family{}, state: TxnActive}
}

// Snapshot returns a copy of the committed values of all existing objects.
// Objects with uncommitted state — an in-place write under a live lock, or
// pending commuting deltas — are skipped, so a snapshot never leaks
// mid-transaction values. Each shard is copied under its own mutex; the
// result is per-object committed, not a store-wide atomic cut.
func (s *Store) Snapshot() map[string]any {
	out := make(map[string]any)
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for k, o := range sh.objects {
			if o.exists && !o.dirty && len(o.pending) == 0 {
				out[k] = o.value
			}
		}
		sh.mu.Unlock()
	}
	return out
}

// waiterCount reports the parked waiters across all shards — test
// instrumentation for the no-leaked-waiters property.
func (s *Store) waiterCount() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for _, o := range sh.objects {
			n += len(o.waiters)
		}
		sh.mu.Unlock()
	}
	return n
}

type undoRec struct {
	key     string
	prev    any
	existed bool
	// repend holds the delta-log records consumed when this entry was taken
	// (lock acquisition materialises the log, fastpath.go): an abort pushes
	// back the records whose owners outlive it.
	repend      []pendingRec
	rependClass Class
}

// Txn is a (possibly nested) transaction. A single transaction must not be
// shared between goroutines, but siblings of one family may run concurrently
// and Abort/State may be called from other goroutines (a CA action aborting
// its nested actions); the family mutex guards the tree's shared fields.
type Txn struct {
	store  *Store
	id     int64
	root   int64 // root ancestor's id, used for wait-die priority
	parent *Txn
	fam    *family

	// All fields below are guarded by fam.mu.
	state       TxnState
	undo        []undoRec
	acquired    []string // keys this txn newly locked
	pendingKeys []string // keys holding delta-log records owned by this txn
	children    []*Txn   // live (active) child transactions
	waiter      *waiter  // set while parked, so an abort can wake this txn
}

// ID returns the transaction's unique identifier.
func (t *Txn) ID() int64 { return t.id }

// State returns the lifecycle state.
func (t *Txn) State() TxnState {
	t.fam.mu.Lock()
	defer t.fam.mu.Unlock()
	return t.state
}

// BeginChild starts a nested transaction. The child's effects become the
// parent's on commit and vanish on abort.
func (t *Txn) BeginChild() (*Txn, error) {
	t.fam.mu.Lock()
	defer t.fam.mu.Unlock()
	if t.state != TxnActive {
		return nil, ErrTxnDone
	}
	id := t.store.nextID.Add(1)
	child := &Txn{store: t.store, id: id, root: t.root, parent: t, fam: t.fam, state: TxnActive}
	t.children = append(t.children, child)
	return child, nil
}

// dropChildLocked removes a finished child from t's live list. Caller holds
// fam.mu.
func (t *Txn) dropChildLocked(child *Txn) {
	for i, c := range t.children {
		if c == child {
			t.children = append(t.children[:i], t.children[i+1:]...)
			return
		}
	}
}

// Read returns the current value of key, acquiring its lock (reads lock
// exclusively: the store provides strict isolation, not read sharing).
func (t *Txn) Read(key string) (any, error) {
	sh, o, err := t.acquire(key)
	if err != nil {
		return nil, err
	}
	defer t.fam.mu.Unlock()
	defer sh.mu.Unlock()
	if !o.exists {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchObject, key)
	}
	return o.value, nil
}

// Write sets key to value, creating the object if necessary.
func (t *Txn) Write(key string, value any) error {
	sh, o, err := t.acquire(key)
	if err != nil {
		return err
	}
	t.undo = append(t.undo, undoRec{key: key, prev: o.value, existed: o.exists})
	o.value = value
	o.exists = true
	o.dirty = true
	sh.mu.Unlock()
	t.fam.mu.Unlock()
	return nil
}

// Update applies f to the current value of key and writes the result back.
func (t *Txn) Update(key string, f func(any) (any, error)) error {
	v, err := t.Read(key)
	if err != nil {
		return err
	}
	nv, err := f(v)
	if err != nil {
		return err
	}
	return t.Write(key, nv)
}

// Commit finishes the transaction. For a nested transaction the undo log,
// lock ownership and delta-log records transfer to the parent; for a
// top-level transaction the pending deltas fold into the committed values
// and all locks are released.
func (t *Txn) Commit() error {
	t.fam.mu.Lock()
	defer t.fam.mu.Unlock()
	if t.state != TxnActive {
		return ErrTxnDone
	}
	if len(t.children) > 0 {
		return ErrActiveChildren
	}
	t.state = TxnCommitted
	if t.parent != nil {
		t.absorbIntoParentLocked()
		return nil
	}
	t.flushPendingLocked()
	t.releaseLocked()
	t.undo = nil
	return nil
}

// absorbIntoParentLocked moves a committed child's undo log, lock ownership
// and delta-log records to its parent — the child's effects become the
// parent's, vanishing if the parent later aborts. Caller holds fam.mu.
func (t *Txn) absorbIntoParentLocked() {
	p := t.parent
	p.dropChildLocked(t)
	for i := range t.undo {
		reownPending(t.undo[i].repend, t, p)
	}
	p.undo = append(p.undo, t.undo...)
	for _, key := range t.acquired {
		sh := t.store.shardFor(key)
		sh.mu.Lock()
		if o := sh.objects[key]; o != nil && o.owner == t {
			o.owner = p
			p.acquired = append(p.acquired, key)
		}
		sh.mu.Unlock()
	}
	for _, key := range t.pendingKeys {
		sh := t.store.shardFor(key)
		sh.mu.Lock()
		if o := sh.objects[key]; o != nil {
			reownPending(o.pending, t, p)
		}
		sh.mu.Unlock()
	}
	p.pendingKeys = append(p.pendingKeys, t.pendingKeys...)
	t.undo, t.acquired, t.pendingKeys = nil, nil, nil
}

// Abort undoes every write made by this transaction (and by its committed
// children), discards its pending deltas and releases the locks it acquired.
// Live nested transactions are aborted first, innermost-first — aborting a
// CA action aborts everything running inside it.
func (t *Txn) Abort() error {
	t.fam.mu.Lock()
	defer t.fam.mu.Unlock()
	if t.state != TxnActive {
		return ErrTxnDone
	}
	t.abortLocked()
	return nil
}

// abortLocked aborts t and, recursively, its live children. Caller holds
// fam.mu.
func (t *Txn) abortLocked() {
	for len(t.children) > 0 {
		t.children[len(t.children)-1].abortLocked()
	}
	t.state = TxnAborted
	if t.waiter != nil {
		// Parked on some object from another goroutine: wake it so the
		// blocked operation returns ErrTxnDone.
		t.waiter.wake()
		t.waiter = nil
	}
	for i := len(t.undo) - 1; i >= 0; i-- {
		rec := &t.undo[i]
		sh := t.store.shardFor(rec.key)
		sh.mu.Lock()
		if o := sh.objects[rec.key]; o != nil {
			o.value = rec.prev
			o.exists = rec.existed
			rependLocked(o, rec, t)
		}
		sh.mu.Unlock()
	}
	t.undo = nil
	t.discardPendingLocked()
	if t.parent != nil {
		t.parent.dropChildLocked(t)
	}
	t.releaseLocked()
}

// acquire takes key's lock for t under strict 2PL with wait-die, draining
// the object's foreign delta log first (commuting deltas and ReadWrite
// access do not commute — the path-incompatible rule falls back to
// coordination). On success BOTH fam.mu and the key's shard mutex are held
// and the object's own-chain delta log has been materialised into its value;
// on error neither lock is held.
func (t *Txn) acquire(key string) (*shard, *object, error) {
	sh := t.store.shardFor(key)
	var parked *waiter
	var parkedOn *object
	for {
		if parked != nil {
			sh.mu.Lock()
			parkedOn.removeWaiter(parked)
			sh.mu.Unlock()
			parked, parkedOn = nil, nil
		}
		t.fam.mu.Lock()
		t.waiter = nil
		if t.state != TxnActive {
			t.fam.mu.Unlock()
			return nil, nil, ErrTxnDone
		}
		sh.mu.Lock()
		o := sh.obj(key)
		holder := o.owner
		if holder == nil || holder == t || t.hasAncestor(holder) {
			minRoot, foreign := o.foreignPending(t)
			if !foreign {
				if holder == nil {
					o.owner = t
					t.acquired = append(t.acquired, key)
				}
				t.materializeLocked(o, key)
				return sh, o, nil
			}
			if t.root < minRoot {
				// Older than every foreign delta owner: wait for the drain.
				parked, parkedOn = t.enqueueWaiterLocked(o), o
				sh.mu.Unlock()
				t.fam.mu.Unlock()
				<-parked.ch
				continue
			}
			sh.mu.Unlock()
			t.fam.mu.Unlock()
			return nil, nil, fmt.Errorf("%w: key %q has pending deltas of txn root %d", ErrWaitDie, key, minRoot)
		}
		if t.root < holder.root {
			// Older transaction waits for the younger holder.
			parked, parkedOn = t.enqueueWaiterLocked(o), o
			sh.mu.Unlock()
			t.fam.mu.Unlock()
			<-parked.ch
			continue
		}
		// Younger transaction dies rather than waits.
		holderID := holder.id
		sh.mu.Unlock()
		t.fam.mu.Unlock()
		return nil, nil, fmt.Errorf("%w: key %q held by txn %d", ErrWaitDie, key, holderID)
	}
}

// enqueueWaiterLocked registers t on o's wait list for a targeted wakeup
// (lock release, delta-log drain, or t's own abort). Caller holds fam.mu and
// the object's shard mutex and must release BOTH before blocking on the
// returned waiter's channel; the unlocks stay in the caller so the lock-order
// analysis sees the loop's back edge holds nothing. A woken waiter may still
// sit on o's list (abort-path wakeup) and must be removed before parking
// again.
func (t *Txn) enqueueWaiterLocked(o *object) *waiter {
	w := &waiter{ch: make(chan struct{}), root: t.root}
	o.waiters = append(o.waiters, w)
	t.waiter = w
	return w
}

// hasAncestor reports whether a is an ancestor of t.
func (t *Txn) hasAncestor(a *Txn) bool {
	for cur := t.parent; cur != nil; cur = cur.parent {
		if cur == a {
			return true
		}
	}
	return false
}

// releaseLocked frees every lock t acquired, clearing the dirty mark (the
// value underneath is final: commit folds first, abort restores first) and
// waking exactly the freed objects' waiters. Caller holds fam.mu.
func (t *Txn) releaseLocked() {
	for _, key := range t.acquired {
		sh := t.store.shardFor(key)
		sh.mu.Lock()
		if o := sh.objects[key]; o != nil && o.owner == t {
			o.owner = nil
			o.dirty = false
			o.wakeAllLocked()
		}
		sh.mu.Unlock()
	}
	t.acquired = nil
}
