package atomicobj

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// TestCascadeReleasesLocksForWaiters: aborting a parent (cascading into a
// live child that holds locks) must wake transactions waiting on those
// locks.
func TestCascadeReleasesLocksForWaiters(t *testing.T) {
	s := NewStore()
	older := s.Begin() // older: will wait
	parent := s.Begin()
	child, err := parent.BeginChild()
	if err != nil {
		t.Fatal(err)
	}
	// Wait: older has smaller id than parent... wait-die has the OLDER
	// transaction wait. Begin order: older(id1), parent(id2). The child
	// (of parent) acquires the lock; older will wait for it.
	if err := child.Write("k", 1); err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() {
		// older waits (its root id is smaller than the holder's).
		got <- older.Write("k", 2)
	}()
	select {
	case err := <-got:
		t.Fatalf("older should be waiting, returned %v", err)
	case <-time.After(10 * time.Millisecond):
	}
	// Cascading abort of the parent releases the child's lock.
	if err := parent.Abort(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-got:
		if err != nil {
			t.Fatalf("older write after cascade: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("waiter was not woken by cascading abort")
	}
	if err := older.Commit(); err != nil {
		t.Fatal(err)
	}
	if s.Snapshot()["k"] != 2 {
		t.Errorf("k = %v, want the waiter's write", s.Snapshot()["k"])
	}
}

// TestWaiterAbortedWhileWaiting: a transaction that is aborted (e.g. by its
// CA action) while blocked on a lock returns ErrTxnDone from the blocked
// operation instead of hanging.
func TestWaiterAbortedWhileWaiting(t *testing.T) {
	s := NewStore()
	older := s.Begin()
	younger := s.Begin()
	if err := younger.Write("k", 1); err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() {
		got <- older.Write("k", 2) // older waits for younger
	}()
	time.Sleep(5 * time.Millisecond)
	// Abort the waiter from outside.
	abortErr := make(chan error, 1)
	go func() { abortErr <- older.Abort() }()
	// Release the lock so the condition variable broadcasts.
	if err := younger.Commit(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-got:
		if !errors.Is(err, ErrTxnDone) && err != nil {
			t.Fatalf("blocked write returned %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("blocked write did not return")
	}
	<-abortErr
}

// TestLockFairnessManyWaiters: several older transactions waiting on one
// young holder all proceed eventually after release.
func TestLockFairnessManyWaiters(t *testing.T) {
	s := NewStore()
	const waiters = 6
	olds := make([]*Txn, waiters)
	for i := range olds {
		olds[i] = s.Begin()
	}
	holder := s.Begin() // youngest: everyone waits for it
	if err := holder.Write("k", 0); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, waiters)
	for i, tx := range olds {
		wg.Add(1)
		go func(i int, tx *Txn) {
			defer wg.Done()
			if err := tx.Update("k", func(v any) (any, error) {
				return v.(int) + 1, nil
			}); err != nil {
				errs[i] = err
				return
			}
			errs[i] = tx.Commit()
		}(i, tx)
	}
	time.Sleep(5 * time.Millisecond)
	if err := holder.Commit(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("waiter %d: %v", i, err)
		}
	}
	if got := s.Snapshot()["k"]; got != waiters {
		t.Errorf("k = %v, want %d", got, waiters)
	}
}

// TestReadCreatesNoObject: reading a missing key must not create it.
func TestReadCreatesNoObject(t *testing.T) {
	s := NewStore()
	tx := s.Begin()
	if _, err := tx.Read("ghost"); !errors.Is(err, ErrNoSuchObject) {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Snapshot()["ghost"]; ok {
		t.Error("read materialised a ghost object")
	}
}
