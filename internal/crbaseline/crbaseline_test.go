package crbaseline

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/exception"
	"repro/internal/ident"
	"repro/internal/protocol"
)

func TestRunValidation(t *testing.T) {
	tree := exception.ChainTree(4)
	if _, err := Run(Config{Tree: tree}, map[ident.ObjectID]string{1: "e2"}); !errors.Is(err, ErrNoParticipants) {
		t.Errorf("want ErrNoParticipants, got %v", err)
	}
	cfg, err := DominoChainConfig(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(cfg, nil); !errors.Is(err, ErrNoInitial) {
		t.Errorf("want ErrNoInitial, got %v", err)
	}
	if _, err := Run(cfg, map[ident.ObjectID]string{1: "bogus"}); !errors.Is(err, exception.ErrUnknownException) {
		t.Errorf("want ErrUnknownException, got %v", err)
	}
}

// TestDominoEffectChainTree reproduces the §3.3 example exactly: T_A is the
// chain e1..e8, O1 handles odd and O2 handles even exceptions. Raising e8
// walks all the way to the root: "any exception will always lead to further
// exceptions until the root of the exception tree is reached".
func TestDominoEffectChainTree(t *testing.T) {
	cfg, err := DominoChainConfig(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	// O2 raises e8 (it has a handler for it, so the raise is e8 itself).
	res, err := Run(cfg, map[ident.ObjectID]string{2: "e8"})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"e8", "e7", "e6", "e5", "e4", "e3", "e2", "e1"}
	if !reflect.DeepEqual(res.RaiseSequence, want) {
		t.Errorf("raise sequence = %v, want %v", res.RaiseSequence, want)
	}
	if res.Final != "e1" {
		t.Errorf("final = %q, want the root e1", res.Final)
	}
	if res.Rounds != 8 {
		t.Errorf("rounds = %d, want 8", res.Rounds)
	}
}

// TestDominoMessageGrowth checks the cubic-versus-quadratic shape: scaling
// the chain length and participant count together, CR messages grow like N³
// while the new algorithm's prediction grows like N².
func TestDominoMessageGrowth(t *testing.T) {
	type point struct {
		n        int
		cr       int
		newAlgos int
	}
	var pts []point
	for _, n := range []int{4, 8, 16, 32} {
		cfg, err := DominoChainConfig(n, n)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(cfg, map[ident.ObjectID]string{ident.ObjectID(n): fmt8(n)})
		if err != nil {
			t.Fatal(err)
		}
		// Compare against the new algorithm's worst case (all N objects
		// raise), its O(N²) bound; the same-scenario cost (P=1) is only
		// 3(N-1), even further below CR.
		pts = append(pts, point{n: n, cr: res.Messages, newAlgos: protocol.PredictMessages(n, n, 0)})
	}
	for i := 1; i < len(pts); i++ {
		// Doubling N must grow CR messages by ~8x (cubic): allow [5x, 11x].
		ratio := float64(pts[i].cr) / float64(pts[i-1].cr)
		if ratio < 5 || ratio > 11 {
			t.Errorf("CR growth N=%d->%d: ratio %.1f not cubic-like (counts %d -> %d)",
				pts[i-1].n, pts[i].n, ratio, pts[i-1].cr, pts[i].cr)
		}
		// The new algorithm grows by ~4x (quadratic).
		nratio := float64(pts[i].newAlgos) / float64(pts[i-1].newAlgos)
		if nratio < 3 || nratio > 5 {
			t.Errorf("new-algorithm growth ratio %.1f not quadratic-like", nratio)
		}
	}
	// CR must always cost more than the new algorithm, increasingly so.
	prevGap := 0.0
	for _, p := range pts {
		gap := float64(p.cr) / float64(p.newAlgos)
		if gap <= 1 {
			t.Errorf("N=%d: CR (%d) not more expensive than new (%d)", p.n, p.cr, p.newAlgos)
		}
		if gap < prevGap {
			t.Errorf("N=%d: CR/new gap %.1f shrank from %.1f", p.n, gap, prevGap)
		}
		prevGap = gap
	}
}

// TestFullCoverageSingleRound: when every participant handles every
// exception (the new algorithm's enforced assumption), CR converges in one
// round — no domino.
func TestFullCoverageSingleRound(t *testing.T) {
	tree := exception.ChainTree(8)
	cfg, err := FullCoverageConfig(tree, 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(cfg, map[ident.ObjectID]string{2: "e8"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 1 {
		t.Errorf("rounds = %d, want 1", res.Rounds)
	}
	if res.Final != "e8" {
		t.Errorf("final = %q, want e8", res.Final)
	}
	// One raise broadcast + acks + one resolve wave.
	n := 4
	want := (n - 1) + (n - 1) + n*(n-1)
	if res.Messages != want {
		t.Errorf("messages = %d, want %d (%v)", res.Messages, want, res.ByKind)
	}
}

// TestConcurrentRaisesResolveToCover: two concurrent raises resolve to the
// least covering exception both sides can handle.
func TestConcurrentRaisesResolveToCover(t *testing.T) {
	tree := exception.AircraftTree()
	cfg, err := FullCoverageConfig(tree, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(cfg, map[ident.ObjectID]string{
		1: "left_engine_exception",
		2: "right_engine_exception",
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Final != "emergency_engine_loss_exception" {
		t.Errorf("final = %q", res.Final)
	}
}

// TestRaiseSubstitution: a participant raising an exception it has no
// handler for announces the covering exception instead.
func TestRaiseSubstitution(t *testing.T) {
	tree := exception.ChainTree(4)
	oddOnly, err := exception.NewReducedTree(tree, "e1", "e3")
	if err != nil {
		t.Fatal(err)
	}
	evenOnly, err := exception.NewReducedTree(tree, "e2", "e4")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Tree: tree, Participants: []Participant{
		{ID: 1, Reduced: oddOnly},
		{ID: 2, Reduced: evenOnly},
	}}
	// O1 raises e4, which it cannot handle: the announcement is e3.
	res, err := Run(cfg, map[ident.ObjectID]string{1: "e4"})
	if err != nil {
		t.Fatal(err)
	}
	if res.RaiseSequence[0] != "e3" {
		t.Errorf("first raise = %q, want substituted e3", res.RaiseSequence[0])
	}
}

func TestDominoConfigValidation(t *testing.T) {
	if _, err := DominoChainConfig(1, 2); err == nil {
		t.Error("chainLen=1 must fail")
	}
	if _, err := DominoChainConfig(4, 1); err == nil {
		t.Error("participants=1 must fail")
	}
}

func TestDivergenceGuard(t *testing.T) {
	cfg, err := DominoChainConfig(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg.MaxRounds = 2
	if _, err := Run(cfg, map[ident.ObjectID]string{2: "e8"}); !errors.Is(err, ErrDiverged) {
		t.Errorf("want ErrDiverged, got %v", err)
	}
}

func fmt8(n int) string {
	// Deepest exception name in a chain of length n.
	return exception.ChainTree(n).Names()[n-1]
}
