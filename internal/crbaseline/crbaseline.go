// Package crbaseline reconstructs the 1986 Campbell–Randell exception
// resolution algorithm, the baseline the paper improves upon. The original
// publication gives only a sketch; this reconstruction follows the paper's
// §3.3 critique of it:
//
//   - every participant holds only a *reduced* tree of exceptions with
//     specific handlers, and "has to look through it after raising each
//     exception and after each resolution";
//   - there is a third source of exceptions: a participant informed of an
//     exception it has no handler for "examines the exception tree, finds and
//     raises an appropriate exception";
//   - every participant (not a single chooser) resolves and distributes its
//     result.
//
// The algorithm therefore proceeds in rounds: newly raised exceptions are
// broadcast and acknowledged, then an all-to-all resolution wave runs
// (N(N-1) messages); participants lacking a handler for the round's result
// re-raise a covering exception, starting another round. On the paper's
// directed-chain tree with alternating reduced trees this produces the
// "domino effect": O(N) rounds of O(N²) messages — O(N³) in total — versus
// the new algorithm's single O(N²) exchange.
//
// The execution here is a synchronous round simulation over the shared
// deterministic delivery fabric (internal/transport): every broadcast,
// acknowledgement and resolution-wave message is a real send on the fabric,
// and the census comes from the fabric's sink — the same counting seam the
// new algorithm's experiments use — which is exactly what the complexity
// comparison (experiment E5) needs, deterministically.
package crbaseline

import (
	"errors"
	"fmt"

	"repro/internal/exception"
	"repro/internal/ident"
	"repro/internal/transport"
)

// Message kind names used in the census.
const (
	// KindRaise is a broadcast announcing a (re-)raised exception.
	KindRaise = "Raise"
	// KindAck acknowledges a Raise.
	KindAck = "ACK"
	// KindResolve is one participant distributing its resolution result.
	KindResolve = "Resolve"
)

// Participant is one CR participant: an identifier plus its reduced tree.
type Participant struct {
	ID      ident.ObjectID
	Reduced *exception.ReducedTree
}

// Config describes a CR run.
type Config struct {
	// Tree is the action's full exception tree (known to every participant).
	Tree *exception.Tree
	// Participants lists every participant of the action.
	Participants []Participant
	// MaxRounds bounds the run; 0 means a generous default.
	MaxRounds int
}

// Result reports a CR run's outcome and cost.
type Result struct {
	// Rounds is the number of raise+resolve rounds executed.
	Rounds int
	// Messages is the total message count.
	Messages int
	// ByKind breaks Messages down by kind.
	ByKind map[string]int
	// Final is the exception the participants converged on.
	Final string
	// RaiseSequence lists every exception raise in order (including the
	// initial ones), exposing the domino effect.
	RaiseSequence []string
}

// Errors returned by Run.
var (
	ErrNoParticipants = errors.New("crbaseline: no participants")
	ErrNoInitial      = errors.New("crbaseline: no initial exceptions")
	ErrDiverged       = errors.New("crbaseline: exceeded round bound without convergence")
)

// Run executes the CR algorithm for the given initial raises (participant ->
// exception name) and returns its outcome and message census.
func Run(cfg Config, initial map[ident.ObjectID]string) (Result, error) {
	n := len(cfg.Participants)
	if n == 0 {
		return Result{}, ErrNoParticipants
	}
	if len(initial) == 0 {
		return Result{}, ErrNoInitial
	}
	maxRounds := cfg.MaxRounds
	if maxRounds == 0 {
		maxRounds = 4 * cfg.Tree.Size() * n
	}

	res := Result{ByKind: make(map[string]int)}

	// The fabric carries every CR message; its census is the message count.
	// Each participant acknowledges every Raise broadcast it receives, as
	// the reconstructed algorithm requires.
	census := transport.NewCensus()
	fabric := transport.NewDeterministic(transport.Options{Sink: census})
	const drainBudget = 1 << 30
	for _, p := range cfg.Participants {
		self := p.ID
		fabric.Register(self, func(m transport.Message) {
			if m.Kind == KindRaise {
				_ = fabric.Send(transport.Message{From: self, To: m.From, Kind: KindAck})
			}
		})
	}

	// known is the set of exceptions everyone has been informed of. In the
	// synchronous model all broadcasts of a round are delivered before the
	// resolution wave, so the set is shared.
	known := make(map[string]bool)
	var knownOrder []string

	raise := func(p Participant, exc string) error {
		// A participant without a specific handler raises the covering
		// exception from its reduced tree instead (the "third source").
		eff := exc
		if !p.Reduced.Handles(exc) {
			var err error
			eff, err = p.Reduced.Covering(exc)
			if err != nil {
				return err
			}
		}
		if known[eff] {
			return nil
		}
		known[eff] = true
		knownOrder = append(knownOrder, eff)
		res.RaiseSequence = append(res.RaiseSequence, eff)
		// Broadcast the raise; receivers ack on delivery.
		for _, q := range cfg.Participants {
			if q.ID == p.ID {
				continue
			}
			if err := fabric.Send(transport.Message{From: p.ID, To: q.ID, Kind: KindRaise, Payload: eff}); err != nil {
				return err
			}
		}
		return fabric.Drain(drainBudget)
	}

	// Initial raises.
	for _, p := range cfg.Participants {
		exc, ok := initial[p.ID]
		if !ok {
			continue
		}
		if !cfg.Tree.Contains(exc) {
			return Result{}, fmt.Errorf("crbaseline: %w: %q", exception.ErrUnknownException, exc)
		}
		if err := raise(p, exc); err != nil {
			return Result{}, err
		}
	}

	for round := 1; ; round++ {
		if round > maxRounds {
			return res, ErrDiverged
		}
		res.Rounds = round

		// Resolution wave: every participant resolves over the known set and
		// distributes its result to everyone else.
		resolved, err := cfg.Tree.Resolve(knownOrder)
		if err != nil {
			return res, err
		}
		for _, p := range cfg.Participants {
			for _, q := range cfg.Participants {
				if q.ID == p.ID {
					continue
				}
				if err := fabric.Send(transport.Message{From: p.ID, To: q.ID, Kind: KindResolve, Payload: resolved}); err != nil {
					return res, err
				}
			}
		}
		if err := fabric.Drain(drainBudget); err != nil {
			return res, err
		}

		// After the resolution, each participant checks its reduced tree for
		// a handler; those without one raise a covering exception, which
		// starts another round.
		newRaise := false
		for _, p := range cfg.Participants {
			if p.Reduced.Handles(resolved) {
				continue
			}
			before := len(knownOrder)
			if err := raise(p, resolved); err != nil {
				return res, err
			}
			if len(knownOrder) > before {
				newRaise = true
			}
		}
		if !newRaise {
			res.Final = resolved
			break
		}
	}

	res.ByKind = census.SentByKind()
	res.Messages = census.TotalSent()
	return res, nil
}

// DominoChainConfig builds the paper's §3.3 domino scenario for a chain tree
// of the given length: two participants, one handling the odd chain
// exceptions, the other the even ones. Extra participants (beyond 2) receive
// alternating reduced trees as well.
func DominoChainConfig(chainLen, participants int) (Config, error) {
	if chainLen < 2 || participants < 2 {
		return Config{}, fmt.Errorf("crbaseline: domino needs chainLen>=2, participants>=2")
	}
	tree := exception.ChainTree(chainLen)
	var odd, even []string
	for i := 1; i <= chainLen; i++ {
		name := fmt.Sprintf("e%d", i)
		if i%2 == 1 {
			odd = append(odd, name)
		} else {
			even = append(even, name)
		}
	}
	cfg := Config{Tree: tree}
	for i := 0; i < participants; i++ {
		handled := odd
		if i%2 == 1 {
			handled = even
		}
		rt, err := exception.NewReducedTree(tree, handled...)
		if err != nil {
			return Config{}, err
		}
		cfg.Participants = append(cfg.Participants, Participant{
			ID:      ident.ObjectID(i + 1),
			Reduced: rt,
		})
	}
	return cfg, nil
}

// FullCoverageConfig builds a CR configuration in which every participant
// handles every exception — the assumption the new algorithm enforces. With
// it, CR terminates in one round; the cost gap that remains is the all-to-all
// resolution wave versus the new algorithm's single chooser.
func FullCoverageConfig(tree *exception.Tree, participants int) (Config, error) {
	cfg := Config{Tree: tree}
	for i := 0; i < participants; i++ {
		rt, err := exception.NewReducedTree(tree, tree.Names()...)
		if err != nil {
			return Config{}, err
		}
		cfg.Participants = append(cfg.Participants, Participant{
			ID:      ident.ObjectID(i + 1),
			Reduced: rt,
		})
	}
	return cfg, nil
}
