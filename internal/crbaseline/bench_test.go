package crbaseline

import (
	"fmt"
	"testing"

	"repro/internal/ident"
)

func BenchmarkDominoRun(b *testing.B) {
	for _, n := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			msgs := 0
			for i := 0; i < b.N; i++ {
				cfg, err := DominoChainConfig(2*n, n)
				if err != nil {
					b.Fatal(err)
				}
				res, err := Run(cfg, map[ident.ObjectID]string{
					ident.ObjectID(n): fmt.Sprintf("e%d", 2*n),
				})
				if err != nil {
					b.Fatal(err)
				}
				msgs = res.Messages
			}
			b.ReportMetric(float64(msgs), "msgs/op")
		})
	}
}

func BenchmarkFullCoverageRun(b *testing.B) {
	cfg, err := DominoChainConfig(16, 8)
	if err != nil {
		b.Fatal(err)
	}
	full, err := FullCoverageConfig(cfg.Tree, 8)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(full, map[ident.ObjectID]string{2: "e16"}); err != nil {
			b.Fatal(err)
		}
	}
}
