package ident

import "testing"

func TestStrings(t *testing.T) {
	if ObjectID(3).String() != "O3" {
		t.Errorf("ObjectID(3) = %q", ObjectID(3).String())
	}
	if ActionID(2).String() != "A2" {
		t.Errorf("ActionID(2) = %q", ActionID(2).String())
	}
	if NodeID(1).String() != "node1" {
		t.Errorf("NodeID(1) = %q", NodeID(1).String())
	}
}

func TestLess(t *testing.T) {
	if !ObjectID(1).Less(2) {
		t.Error("O1 should order before O2")
	}
	if ObjectID(2).Less(2) {
		t.Error("Less must be strict")
	}
}

func TestMaxObject(t *testing.T) {
	if _, ok := MaxObject(nil); ok {
		t.Error("empty set has no max")
	}
	got, ok := MaxObject([]ObjectID{3, 1, 7, 2})
	if !ok || got != 7 {
		t.Errorf("MaxObject = %v, %v; want 7", got, ok)
	}
	got, ok = MaxObject([]ObjectID{5})
	if !ok || got != 5 {
		t.Errorf("MaxObject = %v, %v; want 5", got, ok)
	}
}
