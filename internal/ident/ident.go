// Package ident defines the identifier types shared by every subsystem:
// objects (participants), CA actions and network nodes.
//
// The resolution algorithm of Romanovsky, Xu and Randell requires a total
// order over participating objects ("each object O_i has a unique number and
// all objects are ordered") so that a unique object can be chosen to resolve
// concurrently raised exceptions. ObjectID carries that order.
package ident

import "strconv"

// ObjectID identifies a participating object. IDs are ordered; the object
// with the greatest ID among those that raised exceptions acts as the
// resolution chooser.
type ObjectID int

// String returns the conventional "O<n>" rendering used in the paper.
func (o ObjectID) String() string { return "O" + strconv.Itoa(int(o)) }

// Less reports whether o orders before other.
func (o ObjectID) Less(other ObjectID) bool { return o < other }

// ActionID identifies a CA action instance. Nested actions receive fresh IDs;
// the identifier is unique within a System run.
type ActionID int

// String returns the conventional "A<n>" rendering used in the paper.
func (a ActionID) String() string { return "A" + strconv.Itoa(int(a)) }

// NodeID identifies a simulated network node. In this reproduction each
// participating object runs on its own node, mirroring the paper's
// "disjoint address spaces ... communicate by the exchange of messages".
type NodeID int

// String returns a human-readable rendering.
func (n NodeID) String() string { return "node" + strconv.Itoa(int(n)) }

// MaxObject returns the greatest ObjectID in ids, and false when ids is empty.
func MaxObject(ids []ObjectID) (ObjectID, bool) {
	if len(ids) == 0 {
		return 0, false
	}
	maxID := ids[0]
	for _, id := range ids[1:] {
		if maxID.Less(id) {
			maxID = id
		}
	}
	return maxID, true
}
