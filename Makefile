GO ?= go

.PHONY: build test lint lint-json race bench-smoke fuzz fuzz-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Run the protolint analyzer suite over the whole tree. The tool re-execs
# itself through `go vet -vettool`, so results are cached per package and
# incremental runs are fast. Exit status 2 means unsuppressed findings.
lint:
	$(GO) run ./cmd/protolint ./...

# Same, but findings (suppressed ones included) stream to stdout as NDJSON —
# this is what CI feeds the GitHub annotation step.
lint-json:
	$(GO) run ./cmd/protolint -json ./...

race:
	$(GO) test -race ./...

bench-smoke:
	$(GO) run ./cmd/bench -smoke -label local-smoke -out bench-local.json

# Long-running scenario fuzzing: seeded random action programs checked by the
# cross-backend differential oracle (see docs/FUZZING.md). Shrunk repros of
# any divergence land in internal/scengen/testdata/corpus, where the plain
# test suite replays them forever. Override e.g. FUZZ_DURATION=1h.
FUZZ_DURATION ?= 10m
FUZZ_JOBS ?= 4
# Fresh seeds every run — the generator is fully deterministic per seed, so
# restarting from a fixed seed would re-explore the same programs. A failure
# report names its seed, which IS the repro.
FUZZ_SEED ?= $(shell date +%s)
fuzz:
	$(GO) run ./cmd/scenfuzz -duration $(FUZZ_DURATION) -jobs $(FUZZ_JOBS) \
		-seed $(FUZZ_SEED) -out internal/scengen/testdata/corpus

# The 30-second native-fuzzer smoke CI runs on every PR.
fuzz-smoke:
	$(GO) test -fuzz=FuzzScenario -fuzztime=30s ./internal/scengen
