GO ?= go

.PHONY: build test lint lint-json race bench-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Run the protolint analyzer suite over the whole tree. The tool re-execs
# itself through `go vet -vettool`, so results are cached per package and
# incremental runs are fast. Exit status 2 means unsuppressed findings.
lint:
	$(GO) run ./cmd/protolint ./...

# Same, but findings (suppressed ones included) stream to stdout as NDJSON —
# this is what CI feeds the GitHub annotation step.
lint-json:
	$(GO) run ./cmd/protolint -json ./...

race:
	$(GO) test -race ./...

bench-smoke:
	$(GO) run ./cmd/bench -smoke -label local-smoke -out bench-local.json
