// Benchmarks regenerating the paper's evaluation artefacts. Each benchmark
// corresponds to one experiment row in DESIGN.md / EXPERIMENTS.md:
//
//	BenchmarkMsgsSingleException  E1  §4.4 case 1: 3(N-1) messages
//	BenchmarkMsgsAllNested        E2  §4.4 case 2: 3N(N-1) messages
//	BenchmarkMsgsAllRaise         E3  §4.4 case 3: (N-1)(2N+1) messages
//	BenchmarkGeneralFormula       E4  (N-1)(2P+3Q+1)
//	BenchmarkNewVsCR              E5  O(N²) vs Campbell–Randell O(N³)
//	BenchmarkNoExceptionOverhead  E6  zero protocol overhead
//	BenchmarkAbortVsWait          E7  Figure 1 strategies (abort side)
//	BenchmarkExample1/2           E8/E9 worked examples
//	BenchmarkRecoveryForwardVsBackward E12 Figure 2 modes
//	BenchmarkLatencyVsNestingDepth E13 abortion-handler delays
//	BenchmarkChooserGroupSize     ablation: §4.4 fault-tolerance extension
//	BenchmarkTransportRawVsReliable ablation: §4.5 transport layers
//
// Message counts are attached as the "msgs/op" metric so the complexity
// tables can be read straight from `go test -bench`.
package caa_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/crbaseline"
	"repro/internal/exception"
	"repro/internal/ident"
	"repro/internal/protocol"
	"repro/internal/scenario"
)

// simCase builds and drains one deterministic (n,p,q) protocol run,
// returning total messages.
func simCase(b *testing.B, n, p, q, chooserGroup int) int {
	sim := protocol.NewSim()
	tb := exception.NewBuilder("root")
	for i := 1; i <= n; i++ {
		tb.Add(fmt.Sprintf("E%d", i), "root")
	}
	tree := tb.MustBuild()
	all := make([]ident.ObjectID, n)
	for i := range all {
		all[i] = ident.ObjectID(i + 1)
		e := sim.AddEngine(all[i])
		if chooserGroup > 1 {
			e.SetChooserGroup(chooserGroup)
		}
	}
	if err := sim.EnterAll(protocol.Frame{
		Action: 1, Path: []ident.ActionID{1}, Members: all, Tree: tree,
	}, all...); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < q; i++ {
		obj := all[p+i]
		na := ident.ActionID(100 + i)
		if err := sim.EnterAll(protocol.Frame{
			Action: na, Path: []ident.ActionID{1, na},
			Members: []ident.ObjectID{obj}, Tree: tree,
		}, obj); err != nil {
			b.Fatal(err)
		}
	}
	for i := 0; i < p; i++ {
		if _, err := sim.Engines[all[i]].RaiseLocal(fmt.Sprintf("E%d", i+1)); err != nil {
			b.Fatal(err)
		}
	}
	if err := sim.Drain(100_000_000); err != nil {
		b.Fatal(err)
	}
	return sim.Log.TotalSends()
}

// BenchmarkMsgsSingleException regenerates E1 (§4.4 case 1).
func BenchmarkMsgsSingleException(b *testing.B) {
	for _, n := range []int{2, 4, 8, 16, 32, 64} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			msgs := 0
			for i := 0; i < b.N; i++ {
				msgs = simCase(b, n, 1, 0, 1)
			}
			b.ReportMetric(float64(msgs), "msgs/op")
			b.ReportMetric(float64(protocol.PredictMessages(n, 1, 0)), "paper-msgs/op")
		})
	}
}

// BenchmarkMsgsAllNested regenerates E2 (§4.4 case 2).
func BenchmarkMsgsAllNested(b *testing.B) {
	for _, n := range []int{2, 4, 8, 16, 32} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			msgs := 0
			for i := 0; i < b.N; i++ {
				msgs = simCase(b, n, 1, n-1, 1)
			}
			b.ReportMetric(float64(msgs), "msgs/op")
			b.ReportMetric(float64(3*n*(n-1)), "paper-msgs/op")
		})
	}
}

// BenchmarkMsgsAllRaise regenerates E3 (§4.4 case 3).
func BenchmarkMsgsAllRaise(b *testing.B) {
	for _, n := range []int{2, 4, 8, 16, 32} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			msgs := 0
			for i := 0; i < b.N; i++ {
				msgs = simCase(b, n, n, 0, 1)
			}
			b.ReportMetric(float64(msgs), "msgs/op")
			b.ReportMetric(float64((n-1)*(2*n+1)), "paper-msgs/op")
		})
	}
}

// BenchmarkGeneralFormula regenerates E4 on a few representative points.
func BenchmarkGeneralFormula(b *testing.B) {
	for _, pq := range [][3]int{{8, 1, 0}, {8, 4, 0}, {8, 1, 7}, {8, 4, 4}, {16, 8, 8}} {
		n, p, q := pq[0], pq[1], pq[2]
		b.Run(fmt.Sprintf("N=%d/P=%d/Q=%d", n, p, q), func(b *testing.B) {
			msgs := 0
			for i := 0; i < b.N; i++ {
				msgs = simCase(b, n, p, q, 1)
			}
			b.ReportMetric(float64(msgs), "msgs/op")
			b.ReportMetric(float64(protocol.PredictMessages(n, p, q)), "paper-msgs/op")
		})
	}
}

// BenchmarkNewVsCR regenerates E5: the new algorithm versus the
// Campbell–Randell baseline on the domino scenario (chain tree of depth 2N,
// alternating reduced trees).
func BenchmarkNewVsCR(b *testing.B) {
	for _, n := range []int{4, 8, 16, 32} {
		b.Run(fmt.Sprintf("new/N=%d", n), func(b *testing.B) {
			msgs := 0
			for i := 0; i < b.N; i++ {
				msgs = simCase(b, n, 1, 0, 1)
			}
			b.ReportMetric(float64(msgs), "msgs/op")
		})
		b.Run(fmt.Sprintf("cr/N=%d", n), func(b *testing.B) {
			msgs := 0
			for i := 0; i < b.N; i++ {
				cfg, err := crbaseline.DominoChainConfig(2*n, n)
				if err != nil {
					b.Fatal(err)
				}
				res, err := crbaseline.Run(cfg, map[ident.ObjectID]string{
					ident.ObjectID(n): fmt.Sprintf("e%d", 2*n),
				})
				if err != nil {
					b.Fatal(err)
				}
				msgs = res.Messages
			}
			b.ReportMetric(float64(msgs), "msgs/op")
		})
	}
}

// BenchmarkNoExceptionOverhead regenerates E6: full-stack action execution
// with no exception — the protocol must contribute zero messages.
func BenchmarkNoExceptionOverhead(b *testing.B) {
	for _, n := range []int{2, 4, 8, 16} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			msgs := 0
			for i := 0; i < b.N; i++ {
				res, err := scenario.RunNoException(n, 2, 0)
				if err != nil {
					b.Fatal(err)
				}
				msgs = res.Total
			}
			b.ReportMetric(float64(msgs), "protocol-msgs/op")
		})
	}
}

// BenchmarkAbortVsWait regenerates the measurable half of E7: end-to-end
// latency of the abort-nested strategy with a belated participant. (The
// wait strategy never terminates in this workload — see TestWaitForNested-
// PolicyBlocksOnBelated and `experiments -exp e7`.)
func BenchmarkAbortVsWait(b *testing.B) {
	b.Run("abort", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			out, err := scenario.RunBelated(core.AbortNestedActions, 30*time.Second)
			if err != nil || !out.Completed {
				b.Fatalf("outcome %+v err %v", out, err)
			}
		}
	})
}

// BenchmarkExample1 regenerates E8's exchange.
func BenchmarkExample1(b *testing.B) {
	msgs := 0
	for i := 0; i < b.N; i++ {
		msgs = simCase(b, 3, 2, 0, 1)
	}
	b.ReportMetric(float64(msgs), "msgs/op")
}

// BenchmarkExample2 regenerates E9's exchange (nested elimination, belated
// participant, abortion signal).
func BenchmarkExample2(b *testing.B) {
	msgs := 0
	for i := 0; i < b.N; i++ {
		sim := protocol.NewSim()
		tree := exception.NewBuilder("universal").
			Add("E1", "universal").Add("E2", "universal").Add("E3", "universal").MustBuild()
		all := []ident.ObjectID{1, 2, 3, 4}
		for _, o := range all {
			sim.AddEngine(o)
		}
		mustEnter := func(f protocol.Frame, objs ...ident.ObjectID) {
			if err := sim.EnterAll(f, objs...); err != nil {
				b.Fatal(err)
			}
		}
		mustEnter(protocol.Frame{Action: 1, Path: []ident.ActionID{1}, Members: all, Tree: tree}, all...)
		mustEnter(protocol.Frame{Action: 2, Path: []ident.ActionID{1, 2},
			Members: []ident.ObjectID{2, 3, 4}, Tree: tree}, 2, 3, 4)
		mustEnter(protocol.Frame{Action: 3, Path: []ident.ActionID{1, 2, 3},
			Members: []ident.ObjectID{2, 3}, Tree: tree}, 2)
		sim.SetAbortSignal(2, 1, "E3")
		if _, err := sim.Engines[2].RaiseLocal("E2"); err != nil {
			b.Fatal(err)
		}
		if _, err := sim.Engines[1].RaiseLocal("E1"); err != nil {
			b.Fatal(err)
		}
		if err := sim.Drain(100000); err != nil {
			b.Fatal(err)
		}
		msgs = sim.Log.TotalSends()
	}
	b.ReportMetric(float64(msgs), "msgs/op")
}

// BenchmarkRecoveryForwardVsBackward regenerates E12 (Figure 2).
func BenchmarkRecoveryForwardVsBackward(b *testing.B) {
	b.Run("forward", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := scenario.RunForwardRecovery(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("backward", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := scenario.RunBackwardRecovery(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkLatencyVsNestingDepth regenerates E13: resolution latency grows
// with nesting depth because abortion handlers run serially down the chain.
func BenchmarkLatencyVsNestingDepth(b *testing.B) {
	for _, depth := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := scenario.Run(scenario.Spec{
					N: 3, P: 1, Q: 2, Depth: depth,
					RaiseDelay:   time.Millisecond,
					AbortionCost: 200 * time.Microsecond,
				})
				if err != nil {
					b.Fatal(err)
				}
				if !res.Outcome.Completed {
					b.Fatalf("outcome %+v", res.Outcome)
				}
			}
		})
	}
}

// BenchmarkChooserGroupSize is the ablation for the §4.4 fault-tolerance
// extension: the message cost of k resolvers is a constant factor.
func BenchmarkChooserGroupSize(b *testing.B) {
	const n, p = 8, 4
	for _, k := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			msgs := 0
			for i := 0; i < b.N; i++ {
				msgs = simCase(b, n, p, 0, k)
			}
			b.ReportMetric(float64(msgs), "msgs/op")
		})
	}
}

// BenchmarkTransportRawVsReliable is the §4.5 transport ablation: the
// resolution running over the assumed-reliable network versus over a lossy
// network healed by the reliable-delivery layer (retransmission cost shows
// up as wall-clock latency, not protocol messages).
func BenchmarkTransportRawVsReliable(b *testing.B) {
	run := func(b *testing.B, opts core.Options) {
		members := []ident.ObjectID{1, 2, 3}
		tree := exception.NewBuilder("omega").MustBuild()
		noop := core.HandlerSet{Default: func(*core.RecoveryContext, exception.Exception) (string, error) {
			return "", nil
		}}
		handlers := map[ident.ObjectID]core.HandlerSet{1: noop, 2: noop, 3: noop}
		for i := 0; i < b.N; i++ {
			sys := core.NewSystem(opts)
			def := core.Definition{
				Spec: core.ActionSpec{
					Name: "bench", Tree: tree, Members: members, Handlers: handlers,
				},
				Bodies: map[ident.ObjectID]core.Body{
					1: func(ctx *core.Context) error { ctx.Raise("omega"); return nil },
					2: func(ctx *core.Context) error { ctx.Sleep(time.Hour); return nil },
					3: func(ctx *core.Context) error { ctx.Sleep(time.Hour); return nil },
				},
			}
			out, err := sys.Run(def)
			if err != nil || !out.Completed {
				sys.Close()
				b.Fatalf("outcome %+v err %v", out, err)
			}
			sys.Close()
		}
	}
	b.Run("raw-reliable-net", func(b *testing.B) {
		run(b, core.Options{})
	})
	b.Run("r3-over-reliable-net", func(b *testing.B) {
		run(b, core.Options{
			Transport:  core.TransportReliable,
			Retransmit: 500 * time.Microsecond,
		})
	})
	b.Run("r3-over-lossy-net-10pct-drop", func(b *testing.B) {
		opts := core.Options{Transport: core.TransportReliable, Retransmit: 500 * time.Microsecond}
		opts.Network.DropRate = 0.10
		opts.Network.Seed = 7
		run(b, opts)
	})
}

// BenchmarkResolveTree is the micro-benchmark for the resolution operation
// itself (the chooser's "resolve exceptions in LE_i").
func BenchmarkResolveTree(b *testing.B) {
	tree := exception.ChainTree(64)
	set := []string{"e64", "e33", "e48", "e57"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := tree.Resolve(set); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCentralVsDecentralised is the §4.5 ablation (E14): a designated
// manager resolving centrally versus the paper's decentralised algorithm.
// Message counts are the metric; the centralised variant is linear in N but
// adds hops and a single point of failure.
func BenchmarkCentralVsDecentralised(b *testing.B) {
	for _, n := range []int{4, 8, 16} {
		b.Run(fmt.Sprintf("central/N=%d/P=all", n), func(b *testing.B) {
			msgs := 0
			for i := 0; i < b.N; i++ {
				tb := exception.NewBuilder("root")
				for j := 1; j <= n; j++ {
					tb.Add(fmt.Sprintf("E%d", j), "root")
				}
				members := make([]ident.ObjectID, n)
				for j := range members {
					members[j] = ident.ObjectID(j + 1)
				}
				cs, err := protocol.NewCentralSim(tb.MustBuild(), members)
				if err != nil {
					b.Fatal(err)
				}
				for j := 2; j <= n; j++ {
					if _, err := cs.Raise(ident.ObjectID(j), fmt.Sprintf("E%d", j)); err != nil {
						b.Fatal(err)
					}
				}
				if err := cs.Drain(1_000_000); err != nil {
					b.Fatal(err)
				}
				msgs = cs.Log.TotalSends()
			}
			b.ReportMetric(float64(msgs), "msgs/op")
		})
		b.Run(fmt.Sprintf("decentral/N=%d/P=all", n), func(b *testing.B) {
			msgs := 0
			for i := 0; i < b.N; i++ {
				msgs = simCase(b, n, n, 0, 1)
			}
			b.ReportMetric(float64(msgs), "msgs/op")
		})
	}
}

// BenchmarkCompetingActions measures the competitive-concurrency path: two
// concurrent CA actions contending for one atomic object with wait-die
// back-off (§3's second kind of concurrency).
func BenchmarkCompetingActions(b *testing.B) {
	sys := core.NewSystem(core.Options{})
	defer sys.Close()
	seed := sys.Store().Begin()
	if err := seed.Write("ctr", 0); err != nil {
		b.Fatal(err)
	}
	if err := seed.Commit(); err != nil {
		b.Fatal(err)
	}
	tree := exception.NewBuilder("f").MustBuild()
	noop := core.HandlerSet{Default: func(*core.RecoveryContext, exception.Exception) (string, error) {
		return "", nil
	}}
	mkDef := func() core.Definition {
		return core.Definition{
			Spec: core.ActionSpec{
				Name: "bench-compete", Tree: tree,
				Members:  []ident.ObjectID{1},
				Handlers: map[ident.ObjectID]core.HandlerSet{1: noop},
			},
			Bodies: map[ident.ObjectID]core.Body{
				1: func(ctx *core.Context) error {
					for {
						err := ctx.Update("ctr", func(v any) (any, error) {
							return v.(int) + 1, nil
						})
						if err == nil {
							return nil
						}
						ctx.Sleep(100 * time.Microsecond)
					}
				},
			},
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for j := 0; j < 2; j++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if _, err := sys.Run(mkDef()); err != nil {
					b.Error(err)
				}
			}()
		}
		wg.Wait()
	}
}
