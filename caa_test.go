package caa_test

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	caa "repro"
)

// TestPublicAPIEndToEnd drives the whole library through the public facade
// only: tree building, system setup, nested actions, atomic objects,
// concurrent raising, resolution and recovery.
func TestPublicAPIEndToEnd(t *testing.T) {
	tree := caa.NewTree("failure").
		Add("disk_full", "failure").
		Add("net_down", "failure").
		MustBuild()
	if !tree.Contains("disk_full") {
		t.Fatal("tree lost a node")
	}

	var handled atomic.Int32
	recover := func(rctx *caa.RecoveryContext, resolved caa.Exception) (string, error) {
		if resolved.Name != "failure" {
			return "", fmt.Errorf("resolved %q, want the covering failure", resolved.Name)
		}
		handled.Add(1)
		return "", nil
	}
	members := []caa.ObjectID{1, 2, 3}
	handlers := map[caa.ObjectID]caa.HandlerSet{
		1: {Default: recover}, 2: {Default: recover}, 3: {Default: recover},
	}

	sys := caa.NewSystem(caa.Options{
		Network: caa.NetworkConfig{Latency: caa.JitterLatency(0, 100*time.Microsecond, 5)},
	})
	defer sys.Close()

	out, err := sys.Run(caa.Definition{
		Spec: caa.ActionSpec{
			Name: "api-test", Tree: tree, Members: members, Handlers: handlers,
		},
		Bodies: map[caa.ObjectID]caa.Body{
			1: func(ctx *caa.Context) error { ctx.Raise("disk_full"); return nil },
			2: func(ctx *caa.Context) error { ctx.Raise("net_down"); return nil },
			3: func(ctx *caa.Context) error { ctx.Sleep(time.Hour); return nil },
		},
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !out.Completed {
		t.Fatalf("outcome = %+v", out)
	}
	// Both raises may or may not be concurrent; the result covers them.
	switch out.Resolved {
	case "failure", "disk_full", "net_down":
	default:
		t.Errorf("resolved = %q", out.Resolved)
	}
	if handled.Load() != 3 {
		t.Errorf("handlers ran %d times, want 3", handled.Load())
	}
}

func TestPublicPredictMessages(t *testing.T) {
	if caa.PredictMessages(4, 1, 0) != 9 {
		t.Error("PredictMessages broken")
	}
}

func TestPublicTrees(t *testing.T) {
	if caa.AircraftTree().Size() != 4 {
		t.Error("AircraftTree")
	}
	if caa.ChainTree(5).Size() != 5 {
		t.Error("ChainTree")
	}
}

// ExampleSystem_Run demonstrates the basic flow: one raiser, shared
// handlers, deterministic output.
func ExampleSystem_Run() {
	tree := caa.NewTree("failure").Add("disk_full", "failure").MustBuild()
	recover := func(rctx *caa.RecoveryContext, resolved caa.Exception) (string, error) {
		return "", nil // recovered: complete the action
	}
	sys := caa.NewSystem(caa.Options{})
	defer sys.Close()

	out, err := sys.Run(caa.Definition{
		Spec: caa.ActionSpec{
			Name: "example", Tree: tree,
			Members: []caa.ObjectID{1, 2},
			Handlers: map[caa.ObjectID]caa.HandlerSet{
				1: {Default: recover}, 2: {Default: recover},
			},
		},
		Bodies: map[caa.ObjectID]caa.Body{
			1: func(ctx *caa.Context) error { ctx.Raise("disk_full"); return nil },
			2: func(ctx *caa.Context) error { ctx.Sleep(time.Hour); return nil },
		},
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("completed=%v resolved=%s\n", out.Completed, out.Resolved)
	// Output: completed=true resolved=disk_full
}

// ExampleContext_Enclose demonstrates a nested CA action whose transaction
// commits into the containing action.
func ExampleContext_Enclose() {
	tree := caa.NewTree("failure").MustBuild()
	noop := func(*caa.RecoveryContext, caa.Exception) (string, error) { return "", nil }
	handlers := map[caa.ObjectID]caa.HandlerSet{1: {Default: noop}}
	nested := &caa.ActionSpec{
		Name: "inner", Tree: tree, Members: []caa.ObjectID{1}, Handlers: handlers,
	}

	sys := caa.NewSystem(caa.Options{})
	defer sys.Close()
	_, err := sys.Run(caa.Definition{
		Spec: caa.ActionSpec{
			Name: "outer", Tree: tree, Members: []caa.ObjectID{1}, Handlers: handlers,
		},
		Bodies: map[caa.ObjectID]caa.Body{
			1: func(ctx *caa.Context) error {
				res, err := ctx.Enclose(nested, func(n *caa.Context) error {
					return n.Write("greeting", "hello")
				})
				if err != nil {
					return err
				}
				fmt.Printf("nested completed=%v\n", res.Completed)
				return nil
			},
		},
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("store=%v\n", sys.Store().Snapshot()["greeting"])
	// Output:
	// nested completed=true
	// store=hello
}
