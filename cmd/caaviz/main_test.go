package main

import (
	"os"
	"testing"
)

func TestRunAircraft(t *testing.T) {
	if err := run([]string{"-tree", "aircraft"}, os.Stdout); err != nil {
		t.Fatal(err)
	}
}

func TestRunChainWithRaise(t *testing.T) {
	if err := run([]string{"-tree", "chain", "-size", "6", "-raise", "e4,e6"}, os.Stdout); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownTree(t *testing.T) {
	if err := run([]string{"-tree", "nope"}, os.Stdout); err == nil {
		t.Fatal("unknown tree must error")
	}
}

func TestRunUnknownRaise(t *testing.T) {
	if err := run([]string{"-tree", "aircraft", "-raise", "bogus"}, os.Stdout); err == nil {
		t.Fatal("unknown raised exception must error")
	}
}
