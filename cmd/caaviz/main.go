// Command caaviz renders resolution trees as Graphviz DOT, optionally
// highlighting a raised exception set and its resolution — handy when
// designing an action's exception context.
//
// Examples:
//
//	caaviz -tree aircraft
//	caaviz -tree chain -size 8 -raise e5,e7
//	caaviz -tree aircraft -raise left_engine_exception,right_engine_exception | dot -Tsvg
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/exception"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "caaviz:", err)
		os.Exit(1)
	}
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("caaviz", flag.ContinueOnError)
	var (
		treeName = fs.String("tree", "aircraft", "built-in tree: aircraft | chain")
		size     = fs.Int("size", 8, "chain length for -tree chain")
		raise    = fs.String("raise", "", "comma-separated raised exceptions to highlight")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var tree *exception.Tree
	switch *treeName {
	case "aircraft":
		tree = exception.AircraftTree()
	case "chain":
		tree = exception.ChainTree(*size)
	default:
		return fmt.Errorf("unknown tree %q", *treeName)
	}

	var highlight []string
	if *raise != "" {
		raised := strings.Split(*raise, ",")
		resolved, err := tree.Resolve(raised)
		if err != nil {
			return err
		}
		highlight = append(raised, resolved)
		fmt.Fprintf(os.Stderr, "resolve(%s) = %s\n", *raise, resolved)
	}
	return tree.WriteDOT(out, *treeName, highlight...)
}
