package main

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
)

const fixtureSrc = `package protocol

type State int

const (
	StateNormal State = iota + 1
	StateExceptional
	StateSuspended
	StateReady
)

func describe(s State) string {
	switch s {
	case StateNormal:
		return "N"
	}
	return ""
}
`

// TestAnalyzeConfig drives analyzeConfig exactly as go vet does: a vet.cfg
// naming the package sources, findings on stderr, a vetx output stamp.
func TestAnalyzeConfig(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "protocol.go")
	if err := os.WriteFile(src, []byte(fixtureSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	vetx := filepath.Join(dir, "vet.out")
	cfg := vetConfig{
		ID:         "repro/internal/protocol",
		Compiler:   "gc",
		Dir:        dir,
		ImportPath: "repro/internal/protocol",
		GoFiles:    []string{src},
		VetxOutput: vetx,
	}
	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfgPath := filepath.Join(dir, "vet.cfg")
	if err := os.WriteFile(cfgPath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	diags, err := analyzeConfig(cfgPath, analysis.All())
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("got %d findings, expected 1: %v", len(diags), diags)
	}
	if d := diags[0]; d.Analyzer != "exhaustive" || !strings.Contains(d.Message, "missing cases") {
		t.Errorf("unexpected finding: %v", d)
	}
	if _, err := os.Stat(vetx); err != nil {
		t.Errorf("vetx output was not written: %v", err)
	}

	// A VetxOnly dependency outside the module (ModulePath empty, as the go
	// command writes for stdlib and external deps) is stamped with an empty
	// fact set and not analyzed.
	cfg.VetxOnly = true
	cfg.VetxOutput = filepath.Join(dir, "vetonly.out")
	data, err = json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(cfgPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	diags, err = analyzeConfig(cfgPath, analysis.All())
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Errorf("VetxOnly package produced findings: %v", diags)
	}
	if _, err := os.Stat(cfg.VetxOutput); err != nil {
		t.Errorf("VetxOnly output was not written: %v", err)
	}
}

// TestVetxFactsFlow checks the driver's side of the fact channel: an
// in-module VetxOnly package is analyzed for facts, its exported facts land
// in the VetxOutput file, and they decode under the current version tag.
func TestVetxFactsFlow(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "base.go")
	const baseSrc = `package base

//caa:noalloc
func Fast() int { return 1 }
`
	if err := os.WriteFile(src, []byte(baseSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	vetx := filepath.Join(dir, "vet.out")
	cfg := vetConfig{
		ID:         "repro/internal/base",
		Compiler:   "gc",
		Dir:        dir,
		ImportPath: "repro/internal/base",
		ModulePath: "repro",
		GoFiles:    []string{src},
		VetxOutput: vetx,
		VetxOnly:   true,
	}
	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfgPath := filepath.Join(dir, "vet.cfg")
	if err := os.WriteFile(cfgPath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	diags, err := analyzeConfig(cfgPath, analysis.All())
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Errorf("VetxOnly package produced findings: %v", diags)
	}
	raw, err := os.ReadFile(vetx)
	if err != nil {
		t.Fatalf("vetx output was not written: %v", err)
	}
	fs, ok := analysis.DecodeFacts(raw)
	if !ok {
		t.Fatalf("vetx output does not decode as facts: %q", raw)
	}
	if _, ok := fs.Facts["noalloc"]["Fast"]; !ok {
		t.Errorf("noalloc fact for Fast not exported; got %v", fs.Facts)
	}
}

func TestRelativizeFinding(t *testing.T) {
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	in, err := json.Marshal(jsonFinding{
		File: filepath.Join(cwd, "internal", "x.go"), Line: 3, Col: 1,
		Analyzer: "seam", Message: "m",
	})
	if err != nil {
		t.Fatal(err)
	}
	var out jsonFinding
	if err := json.Unmarshal([]byte(relativizeFinding(string(in))), &out); err != nil {
		t.Fatal(err)
	}
	if want := filepath.Join("internal", "x.go"); out.File != want {
		t.Errorf("File = %q, want %q", out.File, want)
	}

	// Paths outside the invocation directory and non-JSON lines pass through.
	outside := `{"file":"/nowhere/else/x.go","line":1,"col":1,"analyzer":"seam","message":"m","suppressed":false}`
	if got := relativizeFinding(outside); got != outside {
		t.Errorf("outside path rewritten: %s", got)
	}
	if got := relativizeFinding("not json"); got != "not json" {
		t.Errorf("non-JSON line rewritten: %s", got)
	}
}

func TestSelectAnalyzers(t *testing.T) {
	names := func(as []*analysis.Analyzer) string {
		var out []string
		for _, a := range as {
			out = append(out, a.Name)
		}
		return strings.Join(out, ",")
	}
	run := func(args ...string) string {
		fs := flag.NewFlagSet("protolint", flag.PanicOnError)
		toggles := make(map[string]*bool)
		for _, a := range analysis.All() {
			toggles[a.Name] = fs.Bool(a.Name, false, "")
		}
		if err := fs.Parse(args); err != nil {
			t.Fatal(err)
		}
		return names(selectAnalyzers(fs, toggles))
	}

	if got := run(); got != "exhaustive,msgkind,viewkind,determinism,seam,timeseam,locksend,lockorder,resetcheck,noalloc" {
		t.Errorf("default selection = %s", got)
	}
	if got := run("-exhaustive", "-seam"); got != "exhaustive,seam" {
		t.Errorf("positive selection = %s", got)
	}
	if got := run("-locksend=false"); got != "exhaustive,msgkind,viewkind,determinism,seam,timeseam,lockorder,resetcheck,noalloc" {
		t.Errorf("negative selection = %s", got)
	}
}
