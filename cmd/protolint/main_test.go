package main

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
)

const fixtureSrc = `package protocol

type State int

const (
	StateNormal State = iota + 1
	StateExceptional
	StateSuspended
	StateReady
)

func describe(s State) string {
	switch s {
	case StateNormal:
		return "N"
	}
	return ""
}
`

// TestAnalyzeConfig drives analyzeConfig exactly as go vet does: a vet.cfg
// naming the package sources, findings on stderr, a vetx output stamp.
func TestAnalyzeConfig(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "protocol.go")
	if err := os.WriteFile(src, []byte(fixtureSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	vetx := filepath.Join(dir, "vet.out")
	cfg := vetConfig{
		ID:         "repro/internal/protocol",
		Compiler:   "gc",
		Dir:        dir,
		ImportPath: "repro/internal/protocol",
		GoFiles:    []string{src},
		VetxOutput: vetx,
	}
	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfgPath := filepath.Join(dir, "vet.cfg")
	if err := os.WriteFile(cfgPath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	diags, err := analyzeConfig(cfgPath, analysis.All())
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("got %d findings, expected 1: %v", len(diags), diags)
	}
	if d := diags[0]; d.Analyzer != "exhaustive" || !strings.Contains(d.Message, "missing cases") {
		t.Errorf("unexpected finding: %v", d)
	}
	if _, err := os.Stat(vetx); err != nil {
		t.Errorf("vetx output was not written: %v", err)
	}

	// A VetxOnly package (a dependency analyzed only for facts) is stamped
	// but not analyzed.
	cfg.VetxOnly = true
	cfg.VetxOutput = filepath.Join(dir, "vetonly.out")
	data, err = json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(cfgPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	diags, err = analyzeConfig(cfgPath, analysis.All())
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Errorf("VetxOnly package produced findings: %v", diags)
	}
	if _, err := os.Stat(cfg.VetxOutput); err != nil {
		t.Errorf("VetxOnly output was not written: %v", err)
	}
}

func TestSelectAnalyzers(t *testing.T) {
	names := func(as []*analysis.Analyzer) string {
		var out []string
		for _, a := range as {
			out = append(out, a.Name)
		}
		return strings.Join(out, ",")
	}
	run := func(args ...string) string {
		fs := flag.NewFlagSet("protolint", flag.PanicOnError)
		toggles := make(map[string]*bool)
		for _, a := range analysis.All() {
			toggles[a.Name] = fs.Bool(a.Name, false, "")
		}
		if err := fs.Parse(args); err != nil {
			t.Fatal(err)
		}
		return names(selectAnalyzers(fs, toggles))
	}

	if got := run(); got != "exhaustive,msgkind,viewkind,determinism,seam,locksend" {
		t.Errorf("default selection = %s", got)
	}
	if got := run("-exhaustive", "-seam"); got != "exhaustive,seam" {
		t.Errorf("positive selection = %s", got)
	}
	if got := run("-locksend=false"); got != "exhaustive,msgkind,viewkind,determinism,seam" {
		t.Errorf("negative selection = %s", got)
	}
}
