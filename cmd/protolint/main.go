// Command protolint runs the repository's protocol-invariant analyzers
// (internal/analysis) as a go vet tool:
//
//	go build -o protolint ./cmd/protolint
//	go vet -vettool=$PWD/protolint ./...
//
// or, in one step (the binary re-execs itself through go vet when given
// package patterns instead of a vet.cfg):
//
//	go run ./cmd/protolint ./...
//
// It speaks the go vet driver protocol with only the standard library,
// mirroring golang.org/x/tools/go/analysis/unitchecker:
//
//   - `protolint -V=full` prints a version line whose buildID field is a hash
//     of the executable, so the go command's vet cache is invalidated when
//     the tool changes;
//   - `protolint -flags` prints the tool's analyzer flags as JSON, so go vet
//     can validate command-line selections like -exhaustive;
//   - `protolint <flags> <dir>/vet.cfg` typechecks one package from the JSON
//     config the go command prepared (sources plus export data for every
//     import), runs the analyzers and reports findings on stderr, exiting 2
//     when any unsuppressed finding remains.
//
// Cross-package facts ride the vetx cache: each run serializes the package's
// exported fact set (internal/analysis.FactSet) into the VetxOutput file the
// go command maintains, and decodes the PackageVetx files of its dependencies
// back into the pass. Dependencies vetted with VetxOnly are analyzed for
// facts alone; their findings are reported when the package itself is vetted.
//
// With -json (or the driver-protocol spelling -jsonout; go vet reserves
// -json for itself), findings are printed to stdout as newline-delimited
// JSON objects {file, line, col, analyzer, message, suppressed, suppression}
// — suppressed findings included, so CI can surface accepted exceptions. The
// exit code still reflects only unsuppressed findings.
//
// Individual analyzers can be selected (`-exhaustive -seam`) or excluded
// (`-locksend=false`); by default the whole suite runs.
package main

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

func main() {
	progname := filepath.Base(os.Args[0])
	fs := flag.NewFlagSet(progname, flag.ExitOnError)
	vFlag := fs.String("V", "", "print version and exit (use -V=full for the build ID)")
	flagsFlag := fs.Bool("flags", false, "print the analyzer flags as JSON and exit")
	jsonFlag := fs.Bool("json", false, "print findings as newline-delimited JSON on stdout")
	jsonoutFlag := fs.Bool("jsonout", false, "alias for -json usable under go vet, which reserves -json")
	toggles := make(map[string]*bool)
	for _, a := range analysis.All() {
		doc, _, _ := strings.Cut(a.Doc, ":")
		toggles[a.Name] = fs.Bool(a.Name, false, "run the "+a.Name+" analyzer ("+doc+")")
	}
	fs.Parse(os.Args[1:])
	jsonOut := *jsonFlag || *jsonoutFlag

	switch {
	case *vFlag != "":
		printVersion(progname, *vFlag)
		return
	case *flagsFlag:
		printFlags()
		return
	}

	if fs.NArg() != 1 || !strings.HasSuffix(fs.Arg(0), ".cfg") {
		// Not a vet.cfg: treat the arguments as package patterns and re-exec
		// through go vet with ourselves as the vettool, so
		// `go run ./cmd/protolint ./...` is the whole local workflow.
		os.Exit(standalone(fs, toggles, jsonOut))
	}

	diags, err := analyzeConfig(fs.Arg(0), selectAnalyzers(fs, toggles))
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
		os.Exit(1)
	}
	unsuppressed := 0
	for _, d := range diags {
		if !d.Suppressed {
			unsuppressed++
		}
	}
	if jsonOut {
		w := bufio.NewWriter(os.Stdout)
		for _, d := range diags {
			writeJSONFinding(w, d)
		}
		w.Flush()
	} else {
		for _, d := range diags {
			if !d.Suppressed {
				fmt.Fprintln(os.Stderr, d)
			}
		}
	}
	if unsuppressed > 0 {
		os.Exit(2)
	}
}

// jsonFinding is the -json output shape, one object per line.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
	// Suppressed marks findings accepted via //protolint:allow; Suppression
	// carries the comment's reason. They are emitted so CI can annotate
	// accepted exceptions, but do not affect the exit code.
	Suppressed  bool   `json:"suppressed"`
	Suppression string `json:"suppression,omitempty"`
}

func writeJSONFinding(w io.Writer, d analysis.Diagnostic) {
	data, err := json.Marshal(jsonFinding{
		File:        d.Pos.Filename,
		Line:        d.Pos.Line,
		Col:         d.Pos.Column,
		Analyzer:    d.Analyzer,
		Message:     d.Message,
		Suppressed:  d.Suppressed,
		Suppression: d.SuppressReason,
	})
	if err != nil {
		return
	}
	w.Write(data)
	io.WriteString(w, "\n")
}

// standalone runs `go vet -vettool=<self> <args>`, forwarding any analyzer
// selections, and splits the captured output: JSON finding lines (the tool's
// -jsonout output, which go vet interleaves with its own "# package" headers
// on stderr) go to stdout, everything else to stderr. Returns the exit code.
func standalone(fs *flag.FlagSet, toggles map[string]*bool, jsonOut bool) int {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	args := []string{"vet", "-vettool=" + exe}
	fs.Visit(func(f *flag.Flag) {
		if _, ok := toggles[f.Name]; ok {
			args = append(args, "-"+f.Name+"="+f.Value.String())
		}
	})
	if jsonOut {
		args = append(args, "-jsonout")
	}
	args = append(args, fs.Args()...)

	cmd := exec.Command("go", args...)
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = &buf
	runErr := cmd.Run()

	for _, line := range strings.Split(buf.String(), "\n") {
		switch {
		case line == "":
		case strings.HasPrefix(line, "{"):
			fmt.Fprintln(os.Stdout, relativizeFinding(line))
		default:
			fmt.Fprintln(os.Stderr, line)
		}
	}
	if runErr == nil {
		return 0
	}
	if ee, ok := runErr.(*exec.ExitError); ok {
		return ee.ExitCode()
	}
	fmt.Fprintln(os.Stderr, runErr)
	return 1
}

// relativizeFinding rewrites a JSON finding's file path to be relative to the
// invocation directory. Per-package tool runs only know absolute positions;
// the standalone front-end is the one place that knows where the user (or CI,
// which feeds these paths to GitHub annotations) actually stands. Lines that
// do not parse pass through untouched.
func relativizeFinding(line string) string {
	var f jsonFinding
	if err := json.Unmarshal([]byte(line), &f); err != nil || f.File == "" {
		return line
	}
	cwd, err := os.Getwd()
	if err != nil {
		return line
	}
	rel, err := filepath.Rel(cwd, f.File)
	if err != nil || strings.HasPrefix(rel, "..") {
		return line
	}
	f.File = rel
	out, err := json.Marshal(f)
	if err != nil {
		return line
	}
	return string(out)
}

// printVersion implements -V=full: the go command parses the line
// `<name> version devel ... buildID=<id>` and folds the id into its action
// hashes, so the id must change whenever the tool's behaviour does. Hashing
// the executable achieves that.
func printVersion(progname, mode string) {
	if mode != "full" {
		fmt.Printf("%s version devel\n", progname)
		return
	}
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	data, err := os.ReadFile(exe)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	id := sha256.Sum256(data)
	fmt.Printf("%s version devel comments-go-here buildID=%02x/%02x/%02x/%02x\n",
		progname, id[:8], id[8:16], id[16:24], id[24:])
}

// printFlags implements -flags: go vet reads this JSON to learn which
// analyzer flags the tool accepts. -jsonout is advertised (rather than
// -json) because go vet claims -json for its own output framing.
func printFlags() {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	out := []jsonFlag{{Name: "jsonout", Bool: true, Usage: "print findings as newline-delimited JSON on stdout"}}
	for _, a := range analysis.All() {
		out = append(out, jsonFlag{Name: a.Name, Bool: true, Usage: a.Doc})
	}
	data, err := json.Marshal(out)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	os.Stdout.Write(data)
	fmt.Println()
}

// selectAnalyzers applies the command-line toggles: naming any analyzer runs
// only the named ones, while only-negative selections (-locksend=false)
// exclude from the full suite.
func selectAnalyzers(fs *flag.FlagSet, toggles map[string]*bool) []*analysis.Analyzer {
	set := make(map[string]bool)
	fs.Visit(func(f *flag.Flag) {
		if _, ok := toggles[f.Name]; ok {
			set[f.Name] = true
		}
	})
	anyTrue := false
	for name := range set {
		if *toggles[name] {
			anyTrue = true
		}
	}
	var out []*analysis.Analyzer
	for _, a := range analysis.All() {
		switch {
		case anyTrue && *toggles[a.Name]:
			out = append(out, a)
		case !anyTrue && !set[a.Name]:
			out = append(out, a)
		}
	}
	return out
}

// vetConfig is the JSON the go command writes to <objdir>/vet.cfg, one file
// per package (cmd/go/internal/work.vetConfig).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ModulePath                string
	ModuleVersion             string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	GoVersion                 string
	SucceedOnTypecheckFailure bool
}

// analyzeConfig loads one vet.cfg, typechecks the package it describes and
// runs the analyzers over it. The dependencies' facts are decoded from their
// PackageVetx files; the package's own exported facts are serialized into
// VetxOutput (which the go command caches and hands to importers). A VetxOnly
// package — a dependency vetted only so its facts exist — is analyzed with
// its findings discarded: they are reported when that package is the vet
// target itself. Standard-library VetxOnly packages get an empty stamp.
func analyzeConfig(cfgPath string, analyzers []*analysis.Analyzer) ([]analysis.Diagnostic, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return nil, err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", cfgPath, err)
	}
	stamp := func(facts []byte) error {
		if cfg.VetxOutput == "" {
			return nil
		}
		return os.WriteFile(cfg.VetxOutput, facts, 0o666)
	}
	// A VetxOnly dependency outside the module under vet (ModulePath is empty
	// for the standard library and external deps) carries no facts we need:
	// the cross-package analyzers only consume facts from this repository's
	// packages. Stamp it empty and move on rather than typechecking the
	// whole standard library.
	if cfg.VetxOnly && (cfg.ModulePath == "" || cfg.Standard[cfg.ImportPath]) {
		return nil, stamp(nil)
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		if !filepath.IsAbs(name) {
			name = filepath.Join(cfg.Dir, name)
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure || cfg.VetxOnly {
				return nil, stamp(nil)
			}
			return nil, err
		}
		files = append(files, f)
	}

	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	imp := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			if compiler == "gccgo" && cfg.Standard[path] {
				return nil, nil // fall back to the compiler's own search path
			}
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: imp}
	if strings.HasPrefix(cfg.GoVersion, "go") {
		conf.GoVersion = cfg.GoVersion
	}
	pkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure || cfg.VetxOnly {
			return nil, stamp(nil)
		}
		return nil, fmt.Errorf("typechecking %s: %w", cfg.ImportPath, err)
	}

	// Decode the dependencies' facts. PackageVetx keys are import paths; a
	// file that fails to decode (an old empty stamp, a different tool) is
	// treated as fact-free rather than an error.
	imported := make(analysis.FactStore)
	for path, vetxFile := range cfg.PackageVetx {
		data, err := os.ReadFile(vetxFile)
		if err != nil {
			continue
		}
		if fs, ok := analysis.DecodeFacts(data); ok {
			imported[path] = fs
		}
	}

	diags, exported := analysis.Run(fset, files, pkg, info, analyzers, imported)
	if err := stamp(exported.Encode()); err != nil {
		return nil, err
	}
	if cfg.VetxOnly {
		return nil, nil
	}
	return diags, nil
}
