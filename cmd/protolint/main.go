// Command protolint runs the repository's protocol-invariant analyzers
// (internal/analysis) as a go vet tool:
//
//	go build -o protolint ./cmd/protolint
//	go vet -vettool=$PWD/protolint ./...
//
// It speaks the go vet driver protocol with only the standard library,
// mirroring golang.org/x/tools/go/analysis/unitchecker:
//
//   - `protolint -V=full` prints a version line whose buildID field is a hash
//     of the executable, so the go command's vet cache is invalidated when
//     the tool changes;
//   - `protolint -flags` prints the tool's analyzer flags as JSON, so go vet
//     can validate command-line selections like -exhaustive;
//   - `protolint <flags> <dir>/vet.cfg` typechecks one package from the JSON
//     config the go command prepared (sources plus export data for every
//     import), runs the analyzers and reports findings on stderr, exiting 2
//     when there are any.
//
// Individual analyzers can be selected (`-exhaustive -seam`) or excluded
// (`-locksend=false`); by default the whole suite runs.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

func main() {
	progname := filepath.Base(os.Args[0])
	fs := flag.NewFlagSet(progname, flag.ExitOnError)
	vFlag := fs.String("V", "", "print version and exit (use -V=full for the build ID)")
	flagsFlag := fs.Bool("flags", false, "print the analyzer flags as JSON and exit")
	toggles := make(map[string]*bool)
	for _, a := range analysis.All() {
		doc, _, _ := strings.Cut(a.Doc, ":")
		toggles[a.Name] = fs.Bool(a.Name, false, "run the "+a.Name+" analyzer ("+doc+")")
	}
	fs.Parse(os.Args[1:])

	switch {
	case *vFlag != "":
		printVersion(progname, *vFlag)
		return
	case *flagsFlag:
		printFlags()
		return
	}

	if fs.NArg() != 1 || !strings.HasSuffix(fs.Arg(0), ".cfg") {
		fmt.Fprintf(os.Stderr, "usage: %s [flags] <vet.cfg>\n(driven by go vet -vettool=%s; see package documentation)\n", progname, progname)
		os.Exit(1)
	}

	diags, err := analyzeConfig(fs.Arg(0), selectAnalyzers(fs, toggles))
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
		os.Exit(1)
	}
	if len(diags) > 0 {
		for _, d := range diags {
			fmt.Fprintln(os.Stderr, d)
		}
		os.Exit(2)
	}
}

// printVersion implements -V=full: the go command parses the line
// `<name> version devel ... buildID=<id>` and folds the id into its action
// hashes, so the id must change whenever the tool's behaviour does. Hashing
// the executable achieves that.
func printVersion(progname, mode string) {
	if mode != "full" {
		fmt.Printf("%s version devel\n", progname)
		return
	}
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	data, err := os.ReadFile(exe)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	id := sha256.Sum256(data)
	fmt.Printf("%s version devel comments-go-here buildID=%02x/%02x/%02x/%02x\n",
		progname, id[:8], id[8:16], id[16:24], id[24:])
}

// printFlags implements -flags: go vet reads this JSON to learn which
// analyzer flags the tool accepts.
func printFlags() {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var out []jsonFlag
	for _, a := range analysis.All() {
		out = append(out, jsonFlag{Name: a.Name, Bool: true, Usage: a.Doc})
	}
	data, err := json.Marshal(out)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	os.Stdout.Write(data)
	fmt.Println()
}

// selectAnalyzers applies the command-line toggles: naming any analyzer runs
// only the named ones, while only-negative selections (-locksend=false)
// exclude from the full suite.
func selectAnalyzers(fs *flag.FlagSet, toggles map[string]*bool) []*analysis.Analyzer {
	set := make(map[string]bool)
	fs.Visit(func(f *flag.Flag) {
		if _, ok := toggles[f.Name]; ok {
			set[f.Name] = true
		}
	})
	anyTrue := false
	for name := range set {
		if *toggles[name] {
			anyTrue = true
		}
	}
	var out []*analysis.Analyzer
	for _, a := range analysis.All() {
		switch {
		case anyTrue && *toggles[a.Name]:
			out = append(out, a)
		case !anyTrue && !set[a.Name]:
			out = append(out, a)
		}
	}
	return out
}

// vetConfig is the JSON the go command writes to <objdir>/vet.cfg, one file
// per package (cmd/go/internal/work.vetConfig).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ModulePath                string
	ModuleVersion             string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	GoVersion                 string
	SucceedOnTypecheckFailure bool
}

// analyzeConfig loads one vet.cfg, typechecks the package it describes and
// runs the analyzers over it. The VetxOutput file is written unconditionally
// (we export no facts, but the go command caches vet results by its
// presence); VetxOnly packages — dependencies analyzed only for facts — are
// not analyzed at all.
func analyzeConfig(cfgPath string, analyzers []*analysis.Analyzer) ([]analysis.Diagnostic, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return nil, err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", cfgPath, err)
	}
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			return nil, err
		}
	}
	if cfg.VetxOnly {
		return nil, nil
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		if !filepath.IsAbs(name) {
			name = filepath.Join(cfg.Dir, name)
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return nil, nil
			}
			return nil, err
		}
		files = append(files, f)
	}

	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	imp := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			if compiler == "gccgo" && cfg.Standard[path] {
				return nil, nil // fall back to the compiler's own search path
			}
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: imp}
	if strings.HasPrefix(cfg.GoVersion, "go") {
		conf.GoVersion = cfg.GoVersion
	}
	pkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil, nil
		}
		return nil, fmt.Errorf("typechecking %s: %w", cfg.ImportPath, err)
	}

	return analysis.Run(fset, files, pkg, info, analyzers), nil
}
