// Command experiments regenerates every evaluation artefact of the paper:
// the §4.4 message-complexity cases (E1–E4), the Campbell–Randell comparison
// (E5), the zero-overhead claim (E6), the Figure 1 strategy comparison (E7),
// the §4.3 worked examples (E8, E9), the Figure 3 abortion obligations
// (E10), the §3.3 domino effect (E11), the Figure 2 recovery modes (E12) and
// the latency-vs-nesting-depth measurement (E13).
//
// Usage:
//
//	experiments              # run everything, aligned text tables
//	experiments -exp e5      # one experiment
//	experiments -markdown    # GitHub-flavoured markdown (for EXPERIMENTS.md)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	exp := fs.String("exp", "all", "experiment id (e1..e13) or 'all'")
	markdown := fs.Bool("markdown", false, "render GitHub-flavoured markdown")
	batch := fs.Int("batch", 0, "delivery batch for the full-stack runs (0 = per-message)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	experiments.SetBatch(*batch)

	var tables []experiments.Table
	if strings.EqualFold(*exp, "all") {
		all, err := experiments.All()
		if err != nil {
			return err
		}
		tables = all
	} else {
		tbl, err := experiments.ByID(strings.ToLower(*exp))
		if err != nil {
			return err
		}
		tables = []experiments.Table{tbl}
	}

	for i, tbl := range tables {
		if i > 0 {
			fmt.Println()
		}
		if *markdown {
			fmt.Print(tbl.Markdown())
		} else {
			fmt.Print(tbl.Render())
		}
	}
	return nil
}
