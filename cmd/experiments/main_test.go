package main

import "testing"

func TestRunSingleExperiment(t *testing.T) {
	if err := run([]string{"-exp", "e8"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunMarkdown(t *testing.T) {
	if err := run([]string{"-exp", "e11", "-markdown"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-exp", "e99"}); err == nil {
		t.Fatal("unknown experiment must error")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Fatal("bad flag must error")
	}
}
