package main

import "testing"

func TestRunBasicScenario(t *testing.T) {
	if err := run([]string{"-n", "3", "-p", "1", "-raise-delay", "1ms"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunNestedScenario(t *testing.T) {
	if err := run([]string{"-n", "4", "-p", "1", "-q", "2", "-depth", "2", "-raise-delay", "20ms"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunBelatedWaitTimesOut(t *testing.T) {
	if err := run([]string{"-belated", "-policy", "wait", "-timeout", "200ms"}); err != nil {
		t.Fatal(err) // timeout is reported, not returned as an error
	}
}

func TestRunBelatedAbort(t *testing.T) {
	if err := run([]string{"-belated", "-policy", "abort"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunBadPolicy(t *testing.T) {
	if err := run([]string{"-policy", "nonsense"}); err == nil {
		t.Fatal("bad policy must error")
	}
}

func TestRunInvalidSpec(t *testing.T) {
	if err := run([]string{"-n", "0"}); err == nil {
		t.Fatal("invalid spec must error")
	}
}
