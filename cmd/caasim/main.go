// Command caasim runs one ad-hoc CA-action scenario over the full simulated
// distributed stack and reports the outcome, the protocol-message census and
// the paper's closed-form prediction for the observed parameters.
//
// Examples:
//
//	caasim -n 8 -p 2                    # 8 objects, 2 concurrent raisers
//	caasim -n 6 -p 1 -q 3 -depth 2     # 3 objects nested two deep
//	caasim -n 4 -p 1 -latency 2ms      # with network latency
//	caasim -n 3 -p 1 -policy wait -timeout 1s -belated
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/scenario"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "caasim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("caasim", flag.ContinueOnError)
	var (
		n          = fs.Int("n", 4, "participating objects")
		p          = fs.Int("p", 1, "objects raising exceptions concurrently")
		q          = fs.Int("q", 0, "objects inside nested actions")
		depth      = fs.Int("depth", 1, "nesting depth for the -q objects")
		latency    = fs.Duration("latency", 0, "one-way network latency")
		raiseDelay = fs.Duration("raise-delay", 10*time.Millisecond, "delay before raising (lets nesting form)")
		policy     = fs.String("policy", "abort", "nested-action policy: abort | wait")
		timeout    = fs.Duration("timeout", 30*time.Second, "run timeout")
		belated    = fs.Bool("belated", false, "run the belated-participant workload (Figure 1) instead")
		showTrace  = fs.Bool("trace", false, "print the full event trace (paper-style message log)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	pol := core.AbortNestedActions
	switch *policy {
	case "abort":
	case "wait":
		pol = core.WaitForNestedActions
	default:
		return fmt.Errorf("unknown policy %q", *policy)
	}

	if *belated {
		out, err := scenario.RunBelated(pol, *timeout)
		if errors.Is(err, core.ErrTimeout) {
			fmt.Printf("policy=%s: run TIMED OUT after %v (resolution blocked on the belated participant)\n",
				*policy, *timeout)
			return nil
		}
		if err != nil {
			return err
		}
		fmt.Printf("policy=%s: completed=%v resolved=%q\n", *policy, out.Completed, out.Resolved)
		return nil
	}

	spec := scenario.Spec{
		N: *n, P: *p, Q: *q, Depth: *depth,
		RaiseDelay: *raiseDelay, Latency: *latency,
		Policy: pol, Timeout: *timeout, KeepTrace: *showTrace,
	}
	res, err := scenario.Run(spec)
	if err != nil {
		return err
	}

	fmt.Printf("scenario: N=%d P=%d Q=%d depth=%d latency=%v policy=%s\n",
		*n, *p, *q, *depth, *latency, *policy)
	fmt.Printf("outcome: completed=%v resolved=%q signalled=%q\n",
		res.Outcome.Completed, res.Outcome.Resolved, res.Outcome.Signalled)
	fmt.Printf("elapsed: %v\n", res.Elapsed.Round(time.Microsecond))

	kinds := make([]string, 0, len(res.Census))
	for k := range res.Census {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	fmt.Println("protocol messages:")
	for _, k := range kinds {
		fmt.Printf("  %-16s %d\n", k, res.Census[k])
	}
	fmt.Printf("  %-16s %d\n", "total", res.Total)
	fmt.Printf("observed P=%d Q=%d -> paper's prediction (N-1)(2P+3Q+1) = %d  [match: %v]\n",
		res.ObservedP, res.ObservedQ, res.Predicted, res.Predicted == res.Total)
	if *showTrace {
		fmt.Println("\nevent trace:")
		fmt.Print(res.Trace)
	}
	return nil
}
