// Command caasim runs one ad-hoc CA-action scenario over the full simulated
// distributed stack and reports the outcome, the protocol-message census and
// the paper's closed-form prediction for the observed parameters.
//
// Examples:
//
//	caasim -n 8 -p 2                    # 8 objects, 2 concurrent raisers
//	caasim -n 6 -p 1 -q 3 -depth 2     # 3 objects nested two deep
//	caasim -n 4 -p 1 -latency 2ms      # with network latency
//	caasim -n 3 -p 1 -policy wait -timeout 1s -belated
//	caasim -n 5 -partition 4,5 -virtual # membership run on the virtual clock
//	caasim -n 5 -churn 3 -virtual       # 3 partition/heal/rejoin cycles
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/ident"
	"repro/internal/procsim"
	"repro/internal/scenario"
)

// childEnv marks a re-exec of this binary as one -procs participant.
const childEnv = "CAASIM_PROCSIM_OBJECT"

func main() {
	if v := os.Getenv(childEnv); v != "" {
		obj, err := strconv.Atoi(v)
		if err == nil {
			err = procsim.RunChild(ident.ObjectID(obj), os.Stdin, os.Stdout)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "caasim participant:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "caasim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("caasim", flag.ContinueOnError)
	var (
		n          = fs.Int("n", 4, "participating objects")
		p          = fs.Int("p", 1, "objects raising exceptions concurrently")
		q          = fs.Int("q", 0, "objects inside nested actions")
		depth      = fs.Int("depth", 1, "nesting depth for the -q objects")
		latency    = fs.Duration("latency", 0, "one-way network latency")
		raiseDelay = fs.Duration("raise-delay", 10*time.Millisecond, "delay before raising (lets nesting form)")
		policy     = fs.String("policy", "abort", "nested-action policy: abort | wait")
		tport      = fs.String("transport", "raw", "messaging layer: raw | r3 | tcp (real loopback sockets)")
		batch      = fs.Int("batch", 0, "delivery batch: drain up to this many queued messages per engine wakeup (0 = per-message)")
		timeout    = fs.Duration("timeout", 30*time.Second, "run timeout")
		concurrent = fs.Int("concurrent", 1, "submit this many copies of the action to one shared server and report aggregate agreement")
		procs      = fs.Bool("procs", false, "run each participant in its own OS process (re-execs this binary; uses -n, -p, -q)")
		belated    = fs.Bool("belated", false, "run the belated-participant workload (Figure 1) instead")
		showTrace  = fs.Bool("trace", false, "print the full event trace (paper-style message log)")
		partition  = fs.String("partition", "", "comma-separated object numbers to cut away mid-run (enables membership monitoring, e.g. -partition 4,5)")
		partDelay  = fs.Duration("partition-delay", 0, "delay before the partition cut (0 = scenario default)")
		virtual    = fs.Bool("virtual", false, "run on an auto-advancing virtual clock (netsim transports only): timeouts cost virtual time, not wall clock")
		churn      = fs.Int("churn", 0, "run this many partition/heal/rejoin cycles on one persistent group (uses -n, -partition as the victim set, -lease, -virtual)")
		leaseTerm  = fs.Duration("lease", 200*time.Millisecond, "quorum-lease term protecting the view chooser during -churn (0 disables leases)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	pol := core.AbortNestedActions
	switch *policy {
	case "abort":
	case "wait":
		pol = core.WaitForNestedActions
	default:
		return fmt.Errorf("unknown policy %q", *policy)
	}

	kind := core.TransportRaw
	switch *tport {
	case "raw":
	case "r3":
		kind = core.TransportReliable
	case "tcp":
		kind = core.TransportTCP
	default:
		return fmt.Errorf("unknown transport %q", *tport)
	}

	if *procs {
		return runProcs(*n, *p, *q, *timeout)
	}

	if *churn > 0 {
		var victims []int
		if *partition != "" {
			var err error
			if victims, err = parsePartition(*partition); err != nil {
				return err
			}
		}
		return runChurn(*n, victims, *churn, *leaseTerm, *virtual, *timeout)
	}

	if *belated {
		out, err := scenario.RunBelated(pol, *timeout)
		if errors.Is(err, core.ErrTimeout) {
			fmt.Printf("policy=%s: run TIMED OUT after %v (resolution blocked on the belated participant)\n",
				*policy, *timeout)
			return nil
		}
		if err != nil {
			return err
		}
		fmt.Printf("policy=%s: completed=%v resolved=%q\n", *policy, out.Completed, out.Resolved)
		return nil
	}

	spec := scenario.Spec{
		N: *n, P: *p, Q: *q, Depth: *depth,
		RaiseDelay: *raiseDelay, Latency: *latency,
		Policy: pol, Transport: kind, Batch: *batch,
		Timeout: *timeout, KeepTrace: *showTrace,
	}
	if *partition != "" {
		cut, err := parsePartition(*partition)
		if err != nil {
			return err
		}
		spec.Membership = true
		spec.Partition = cut
		spec.PartitionDelay = *partDelay
	}
	spec.Virtual = *virtual
	if *concurrent > 1 {
		if spec.Membership {
			return errors.New("-concurrent and -partition are mutually exclusive (membership runs need a private directory)")
		}
		return runConcurrent(spec, kind, *batch, *concurrent, *timeout)
	}
	res, err := scenario.Run(spec)
	if err != nil {
		return err
	}

	fmt.Printf("scenario: N=%d P=%d Q=%d depth=%d latency=%v policy=%s transport=%s batch=%d\n",
		*n, *p, *q, *depth, *latency, *policy, *tport, *batch)
	fmt.Printf("outcome: completed=%v resolved=%q signalled=%q\n",
		res.Outcome.Completed, res.Outcome.Resolved, res.Outcome.Signalled)
	if len(res.Outcome.Expelled) > 0 {
		fmt.Printf("expelled: %v (membership views decided these participants failed)\n",
			res.Outcome.Expelled)
	}
	fmt.Printf("elapsed: %v\n", res.Elapsed.Round(time.Microsecond))

	kinds := make([]string, 0, len(res.Census))
	for k := range res.Census {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	fmt.Println("protocol messages:")
	for _, k := range kinds {
		fmt.Printf("  %-16s %d\n", k, res.Census[k])
	}
	fmt.Printf("  %-16s %d\n", "total", res.Total)
	fmt.Printf("observed P=%d Q=%d -> paper's prediction (N-1)(2P+3Q+1) = %d  [match: %v]\n",
		res.ObservedP, res.ObservedQ, res.Predicted, res.Predicted == res.Total)
	if *showTrace {
		fmt.Println("\nevent trace:")
		fmt.Print(res.Trace)
	}
	return nil
}

// runChurn is the -churn mode: one persistent group survives a sequence of
// partition/heal/rejoin cycles, each expelling the victim set and readmitting
// it via petition, quorum-leased view change and state transfer, then a final
// whole-group exception run proves the rejoined members resolve again.
func runChurn(n int, victims []int, cycles int, lease time.Duration, virtual bool, timeout time.Duration) error {
	res, err := scenario.RunChurn(scenario.ChurnSpec{
		N:       n,
		Victims: victims,
		Cycles:  cycles,
		Lease:   lease,
		Virtual: virtual,
		Timeout: timeout,
	})
	if err != nil {
		return err
	}
	if len(victims) == 0 {
		victims = []int{n}
	}
	fmt.Printf("churn: N=%d victims=%v cycles=%d lease=%v virtual=%v\n",
		n, victims, res.Cycles, lease, virtual)
	fmt.Printf("expelled=%d rejoined=%d final-epoch=%d\n",
		res.Expelled, res.Rejoined, res.FinalEpoch)
	fmt.Printf("post-heal: resolved=%q with %d/%d rejoined members participating\n",
		res.PostHealResolved, res.PostHealParticipants, len(victims))
	fmt.Printf("elapsed: %v (%v per cycle)\n",
		res.Elapsed.Round(time.Microsecond),
		(res.Elapsed / time.Duration(res.Cycles)).Round(time.Microsecond))
	return nil
}

// runConcurrent is the -concurrent mode: copies of the same action are
// submitted together to one shared server, multiplexed over the same
// per-object transports, and the aggregate report shows whether every copy
// reached the same outcome the action reaches when run alone.
func runConcurrent(spec scenario.Spec, kind core.TransportKind, batch, copies int, timeout time.Duration) error {
	def, err := scenario.Build(spec)
	if err != nil {
		return err
	}
	srv := core.NewServer(core.Options{Transport: kind, Batch: batch})
	defer srv.Close()

	outs := make([]core.Outcome, copies)
	errs := make([]error, copies)
	var wg sync.WaitGroup
	start := time.Now()
	for k := 0; k < copies; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			outs[k], errs[k] = srv.RunTimeout(def, timeout)
		}(k)
	}
	wg.Wait()
	elapsed := time.Since(start)

	completed := 0
	resolved := make(map[string]int)
	var firstErr error
	for k := 0; k < copies; k++ {
		if errs[k] != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("copy %d: %w", k, errs[k])
			}
			continue
		}
		if outs[k].Completed {
			completed++
		}
		resolved[outs[k].Resolved]++
	}

	fmt.Printf("concurrent: %d copies of N=%d P=%d Q=%d on one shared server (transport=%v batch=%d)\n",
		copies, spec.N, spec.P, spec.Q, kind, batch)
	fmt.Printf("agreement: %d/%d copies completed\n", completed, copies)
	keys := make([]string, 0, len(resolved))
	for k := range resolved {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		label := k
		if label == "" {
			label = "(none)"
		}
		fmt.Printf("  resolved %-12s %d\n", label, resolved[k])
	}
	fmt.Printf("elapsed: %v (%.0f actions/sec)\n",
		elapsed.Round(time.Microsecond), float64(copies)/elapsed.Seconds())
	if firstErr != nil {
		return firstErr
	}
	if completed != copies {
		return fmt.Errorf("%d of %d copies did not complete", copies-completed, copies)
	}
	return nil
}

// parsePartition parses the -partition flag: comma-separated object numbers.
func parsePartition(s string) ([]int, error) {
	var out []int
	for _, field := range strings.Split(s, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		v, err := strconv.Atoi(field)
		if err != nil {
			return nil, fmt.Errorf("bad -partition entry %q: %w", field, err)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, errors.New("-partition lists no objects")
	}
	return out, nil
}

// runProcs is the -procs mode: the resolution protocol with every
// participant in its own OS process (protocol messages cross real loopback
// sockets), checked against the in-process Deterministic fabric.
func runProcs(n, p, q int, timeout time.Duration) error {
	sc := procsim.Scenario{
		N: n, Tree: procsim.TreeFlat,
		Raisers: make(map[ident.ObjectID]string, p),
		Nested:  make(map[ident.ObjectID]string, q),
	}
	for i := 1; i <= p; i++ {
		sc.Raisers[ident.ObjectID(i)] = fmt.Sprintf("exc%d", i)
	}
	for i := p + 1; i <= p+q; i++ {
		sc.Nested[ident.ObjectID(i)] = ""
	}
	if err := sc.Validate(); err != nil {
		return err
	}

	want, err := procsim.Reference(sc)
	if err != nil {
		return fmt.Errorf("deterministic reference: %w", err)
	}
	exe, err := os.Executable()
	if err != nil {
		return err
	}
	spawn := procsim.SelfSpawner(exe, nil, os.Environ(), childEnv)
	out, err := procsim.Coordinate(sc, spawn, timeout)
	if err != nil {
		return err
	}
	resolved, err := out.Agreed()
	if err != nil {
		return err
	}
	fmt.Printf("multi-process: N=%d P=%d Q=%d, one OS process per object, messages over TCP loopback\n", n, p, q)
	fmt.Printf("resolved: %q by all %d processes\n", resolved, len(out.Resolved))
	fmt.Printf("deterministic reference: %q  [match: %v]\n", want, resolved == want)
	if resolved != want {
		return errors.New("multi-process run disagrees with the deterministic reference")
	}
	return nil
}
