// Command bench runs the repository's hot-path benchmark suite and writes a
// machine-readable BENCH_*.json report: ns/op, B/op, allocs/op and the exact
// protocol-message count per scenario (see internal/bench for the schema).
//
// Usage:
//
//	bench -out BENCH_4.json -label baseline          # fresh file, one run
//	bench -out BENCH_4.json -label optimised -append # add a second run
//	bench -smoke                                     # 1 iteration each (CI)
//	bench -filter storm -time 1s                     # subset, longer target
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/bench"
)

// msDur renders a nanosecond figure as a millisecond duration string.
func msDur(ns float64) string {
	return time.Duration(ns).Round(10 * time.Microsecond).String()
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	var (
		out    = fs.String("out", "", "write/append the JSON report here (empty = stdout summary only)")
		label  = fs.String("label", "dev", "label for this run (e.g. baseline, optimised)")
		appnd  = fs.Bool("append", false, "append to an existing -out file instead of overwriting")
		smoke  = fs.Bool("smoke", false, "run each scenario exactly once (CI smoke mode)")
		filter = fs.String("filter", "", "only run scenarios whose name contains this substring")
		target = fs.Duration("time", 300*time.Millisecond, "wall-clock budget per scenario")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	scenarios := bench.Default()
	if *filter != "" {
		kept := scenarios[:0]
		for _, s := range scenarios {
			if strings.Contains(s.Name, *filter) {
				kept = append(kept, s)
			}
		}
		scenarios = kept
		if len(scenarios) == 0 {
			return fmt.Errorf("no scenario matches -filter %q", *filter)
		}
	}

	fmt.Printf("%-34s %10s %14s %12s %12s %8s\n",
		"scenario", "iters", "ns/op", "B/op", "allocs/op", "msgs")
	ms, err := bench.MeasureAll(scenarios, bench.Options{Target: *target, Smoke: *smoke},
		func(m bench.Measurement) {
			row := fmt.Sprintf("%-34s %10d %14.0f %12.0f %12.1f %8d",
				m.Name, m.Iterations, m.NsPerOp, m.BytesPerOp, m.AllocsPerOp, m.Msgs)
			if m.ActionsPerSec > 0 {
				row += fmt.Sprintf("  %.0f act/s p50=%s p99=%s p999=%s",
					m.ActionsPerSec, msDur(m.P50Ns), msDur(m.P99Ns), msDur(m.P999Ns))
			}
			fmt.Println(row)
		})
	if err != nil {
		return err
	}

	if *out == "" {
		return nil
	}
	doc := bench.File{}
	if *appnd {
		doc, err = bench.ReadFile(*out)
		if err != nil && !errors.Is(err, os.ErrNotExist) {
			return err
		}
	}
	doc.Runs = append(doc.Runs, bench.Run{
		Label:     *label,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Date:      time.Now().UTC().Format(time.RFC3339),
		Scenarios: ms,
	})
	if err := bench.WriteFile(*out, doc); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d run(s))\n", *out, len(doc.Runs))
	return nil
}
