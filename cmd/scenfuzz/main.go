// Command scenfuzz is the long-running scenario fuzzer: it walks seeds
// through the generator and the cross-backend differential oracle
// (internal/scengen), shrinks any divergence to a minimal program, and writes
// the repro JSON where -out points — typically internal/scengen/testdata/corpus,
// so the failure becomes a permanent regression test. Nightly CI runs it with
// a time budget and uploads whatever it wrote as artifacts.
//
// Usage:
//
//	go run ./cmd/scenfuzz -duration 10m -out internal/scengen/testdata/corpus
//	go run ./cmd/scenfuzz -cases 200 -seed 1 -jobs 4
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/scengen"
)

func main() {
	var (
		duration = flag.Duration("duration", 0, "time budget (0 = use -cases)")
		cases    = flag.Int("cases", 100, "number of cases when -duration is 0")
		seed     = flag.Uint64("seed", 1, "first seed")
		jobs     = flag.Int("jobs", 1, "concurrent oracle workers (leak check is disabled when > 1)")
		out      = flag.String("out", "", "directory for shrunk failure repros (empty = don't write)")
		verbose  = flag.Bool("v", false, "log every case")
	)
	flag.Parse()

	opts := scengen.Options{SkipLeak: *jobs > 1}
	deadline := time.Time{}
	if *duration > 0 {
		deadline = time.Now().Add(*duration)
	}

	var (
		ran      atomic.Int64
		failures atomic.Int64
		wg       sync.WaitGroup
		seeds    = make(chan uint64)
	)
	worker := func() {
		defer wg.Done()
		for s := range seeds {
			// The knob byte cycles through the grammar's shape biases so every
			// seed range covers storms, partitions and multi-family programs.
			knobs := uint8(s % 16)
			p := scengen.Generate(s, scengen.KnobConfig(knobs))
			rep := scengen.Check(p, opts)
			ran.Add(1)
			if *verbose {
				fmt.Printf("%s\n", rep)
			}
			if !rep.Failed() {
				continue
			}
			failures.Add(1)
			fmt.Fprintf(os.Stderr, "FAIL %s", rep)
			min := shrinkFailure(p)
			if *out != "" {
				path := filepath.Join(*out, fmt.Sprintf("fail-seed%d-knobs%d.json", s, knobs))
				if err := os.MkdirAll(*out, 0o755); err != nil {
					fmt.Fprintf(os.Stderr, "scenfuzz: %v\n", err)
				} else if err := os.WriteFile(path, min.Bytes(), 0o644); err != nil {
					fmt.Fprintf(os.Stderr, "scenfuzz: %v\n", err)
				} else {
					fmt.Fprintf(os.Stderr, "scenfuzz: wrote shrunk repro to %s\n", path)
				}
			}
		}
	}
	for i := 0; i < *jobs; i++ {
		wg.Add(1)
		go worker()
	}

	if deadline.IsZero() {
		for i := 0; i < *cases; i++ {
			seeds <- *seed + uint64(i)
		}
	} else {
		for s := *seed; !time.Now().After(deadline); s++ {
			seeds <- s
		}
	}
	close(seeds)
	wg.Wait()

	fmt.Printf("scenfuzz: %d cases, %d failure(s)\n", ran.Load(), failures.Load())
	if failures.Load() > 0 {
		os.Exit(1)
	}
}

// shrinkFailure minimises a failing program with a faster oracle
// configuration: known-failing programs are re-checked dozens of times, so
// the settle deadline drops and the leak check (2s grace per probe when a
// leak is present) is skipped.
func shrinkFailure(p *scengen.Program) *scengen.Program {
	shrinkOpts := scengen.Options{
		Settle:     3 * time.Second,
		RunTimeout: 10 * time.Second,
		SkipLeak:   true,
	}
	return scengen.Shrink(p, func(c *scengen.Program) bool {
		return scengen.Check(c, shrinkOpts).Failed()
	}, 150)
}
