// Package caa is the public API of this reproduction of Romanovsky, Xu and
// Randell, "Exception Handling and Resolution in Distributed Object-Oriented
// Systems" (ICDCS 1996): Coordinated Atomic (CA) actions with distributed
// resolution of concurrently raised exceptions in O(N²) messages.
//
// A minimal use looks like:
//
//	tree := caa.NewTree("failure").Add("disk_full", "failure").MustBuild()
//	sys := caa.NewSystem(caa.Options{})
//	defer sys.Close()
//	out, err := sys.Run(caa.Definition{
//		Spec: caa.ActionSpec{
//			Name: "job", Tree: tree, Members: []caa.ObjectID{1, 2},
//			Handlers: map[caa.ObjectID]caa.HandlerSet{
//				1: {Default: recoverJob}, 2: {Default: recoverJob},
//			},
//		},
//		Bodies: map[caa.ObjectID]caa.Body{1: work1, 2: work2},
//	})
//
// Participating objects run concurrently on simulated network nodes; when
// any of them raises a declared exception (Context.Raise), the resolution
// protocol finds the least exception in the action's resolution tree that
// covers everything raised concurrently and starts that exception's handler
// in every participant. Nested actions (Context.Enclose) are aborted through
// abortion handlers when a containing action must recover, and external
// atomic objects (Context.Read/Write/Update) are kept consistent by the
// per-action transactions.
//
// The implementation lives in internal packages: internal/protocol is the
// paper's §4.2 algorithm, internal/core the CA-action runtime,
// internal/netsim and internal/group the distributed substrate, and
// internal/crbaseline the 1986 Campbell–Randell baseline used by the
// benchmarks.
package caa

import (
	"repro/internal/atomicobj"
	"repro/internal/core"
	"repro/internal/exception"
	"repro/internal/ident"
	"repro/internal/netsim"
	"repro/internal/protocol"
)

// Identifier types.
type (
	// ObjectID identifies a participating object; the total order over
	// ObjectIDs selects the resolution chooser.
	ObjectID = ident.ObjectID
	// ActionID identifies a CA-action instance.
	ActionID = ident.ActionID
)

// Exception model.
type (
	// Exception is a raised exception instance.
	Exception = exception.Exception
	// Tree is a resolution tree: the partial order over an action's
	// declared exceptions.
	Tree = exception.Tree
	// TreeBuilder accumulates resolution-tree nodes.
	TreeBuilder = exception.Builder
)

// NewTree starts a resolution tree whose universal (root) exception has the
// given name.
func NewTree(root string) *TreeBuilder { return exception.NewBuilder(root) }

// AircraftTree returns the paper's §3.2 example tree.
func AircraftTree() *Tree { return exception.AircraftTree() }

// ChainTree returns the §3.3 directed-chain tree e1 -> ... -> en.
func ChainTree(n int) *Tree { return exception.ChainTree(n) }

// CA-action model.
type (
	// System owns the simulated network, membership, atomic-object store
	// and trace log.
	System = core.System
	// Options configures a System.
	Options = core.Options
	// Definition is a top-level CA action: spec plus member bodies.
	Definition = core.Definition
	// ActionSpec declares an action: tree, members, handlers.
	ActionSpec = core.ActionSpec
	// HandlerSet is one member's exception handlers for an action.
	HandlerSet = core.HandlerSet
	// Handler recovers an action after resolution.
	Handler = core.Handler
	// AbortionHandler runs when a nested action is aborted.
	AbortionHandler = core.AbortionHandler
	// Body is a participating object's normal activity.
	Body = core.Body
	// Context is the body-side runtime interface.
	Context = core.Context
	// RecoveryContext is the handler-side runtime interface.
	RecoveryContext = core.RecoveryContext
	// TxnView accesses external atomic objects transactionally.
	TxnView = core.TxnView
	// NestedResult reports how a nested action finished.
	NestedResult = core.NestedResult
	// Outcome aggregates a top-level run.
	Outcome = core.Outcome
	// ParticipantResult is one object's view of the outcome.
	ParticipantResult = core.ParticipantResult
	// Attempt is one backward-recovery attempt's bodies.
	Attempt = core.Attempt
	// RecoveryOutcome reports a RunWithRecovery execution.
	RecoveryOutcome = core.RecoveryOutcome
	// NestedPolicy selects Figure 1's nested-action strategy.
	NestedPolicy = core.NestedPolicy
	// TransportKind selects the messaging layer.
	TransportKind = core.TransportKind
)

// Atomic-object operations (Context.Apply / TxnView.Apply).
type (
	// Op is a typed atomic-object operation carrying its commutativity
	// class. Ops in the same commuting class on the same object commit
	// without locking or wait-die conflicts.
	Op = atomicobj.Op
	// OpClass is an operation's commutativity class.
	OpClass = atomicobj.Class
)

// Commutativity classes.
const (
	// OpReadWrite operations coordinate through strict 2PL (the default).
	OpReadWrite = atomicobj.ReadWrite
	// OpIncrement operations (AddOp) commute with each other.
	OpIncrement = atomicobj.Increment
	// OpSetInsert operations (InsertOp) commute with each other.
	OpSetInsert = atomicobj.SetInsert
)

// AddOp returns an Increment-class operation adding delta to an integer
// object (Context.Add is shorthand for Apply with an AddOp).
func AddOp(delta int) Op { return atomicobj.AddOp(delta) }

// InsertOp returns a SetInsert-class operation inserting elem into a
// set-valued (map[string]bool) object.
func InsertOp(elem string) Op { return atomicobj.InsertOp(elem) }

// UpdateOp returns a ReadWrite-class operation applying f under the
// object's lock, equivalent to Context.Update.
func UpdateOp(f func(any) (any, error)) Op { return atomicobj.UpdateOp(f) }

// Nested-action policies (Figure 1 of the paper).
const (
	// AbortNestedActions aborts nested actions via abortion handlers when a
	// containing action must recover (Figure 1(b), the paper's choice).
	AbortNestedActions = core.AbortNestedActions
	// WaitForNestedActions waits for nested actions to complete first
	// (Figure 1(a)); may wait forever on belated participants.
	WaitForNestedActions = core.WaitForNestedActions
)

// Transport kinds.
const (
	// TransportRaw assumes the network is reliable and FIFO.
	TransportRaw = core.TransportRaw
	// TransportReliable adds retransmission and duplicate suppression for
	// lossy network configurations.
	TransportReliable = core.TransportReliable
)

// NewSystem creates a System.
func NewSystem(opts Options) *System { return core.NewSystem(opts) }

// Network simulation configuration.
type (
	// NetworkConfig configures the simulated network (latency, loss).
	NetworkConfig = netsim.Config
	// LatencyModel computes per-message delivery delay.
	LatencyModel = netsim.LatencyModel
)

// Latency models for NetworkConfig.
var (
	// NoLatency delivers instantly.
	NoLatency = netsim.NoLatency
	// FixedLatency delivers after a constant delay.
	FixedLatency = netsim.FixedLatency
	// JitterLatency delivers after base plus uniform jitter.
	JitterLatency = netsim.JitterLatency
)

// PredictMessages returns the paper's §4.4 closed-form message count
// (N-1)(2P+3Q+1) for the resolution protocol.
func PredictMessages(n, p, q int) int { return protocol.PredictMessages(n, p, q) }
